"""The end-to-end simulation of a scheduler driving a heterogeneous system.

:func:`simulate_schedule` wires together the master (scheduling policy plus
task queues), one worker per processor, the network model, and the
discrete-event engine, and returns the paper's metrics (makespan and
efficiency) together with the full execution trace.

The dispatch protocol follows Sect. 3 of the paper:

1. arriving tasks join the master's unscheduled FCFS queue;
2. the scheduling policy is invoked to map (batches of) unscheduled tasks
   onto per-processor queues held at the master;
3. an idle worker requests its next task; delivering it costs the link's
   (randomly varying) communication time, after which the worker executes the
   task at its current effective rate and reports completion;
4. when a worker's master-side queue runs dry and unscheduled tasks remain,
   the policy is invoked again — this is what makes batch scheduling
   *dynamic* and lets the PN scheduler exploit the communication-cost and
   rate observations accumulated so far.

Cluster dynamics (worker failure/recovery/join, load spikes) are injected by
an optional *dynamics timeline* (see :mod:`repro.scenarios.dynamics`).  The
simulation only requires the timeline to expose ``initially_offline()`` and
``sim_events(next_task_id, rng)``; the handlers below enforce the
conservation invariant that every arrived task completes exactly once:

* a failing worker's in-flight task and master-side queue are re-queued at
  the front of the unscheduled queue and the policy is re-invoked;
* the pending completion event of the lost in-flight task is cancelled;
* offline workers are never handed tasks, and assignments a policy maps to
  them are diverted by the master to the least-loaded online queue.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Protocol, Sequence, Tuple


from ..cluster.cluster import Cluster
from ..schedulers.base import Scheduler
from ..schedulers.kernels import POLICY_BACKEND_NAMES
from ..telemetry import get_session
from ..util.errors import SimulationError
from ..util.rng import RNGLike, spawn_rngs
from ..workloads.task import Task, TaskSet
from ..util.buffers import RecordBuffer
from .engine import DiscreteEventEngine
from .events import Event, EventKind
from .fastpath import is_static, run_static_replay
from .master import Master
from .metrics import DynamicsStats, SimulationMetrics, compute_metrics
from .trace import ExecutionTrace
from .worker import WorkerState

__all__ = [
    "SIM_BACKENDS",
    "SimulationConfig",
    "SimulationResult",
    "DynamicsTimelineLike",
    "DistributedSystemSimulation",
    "simulate_schedule",
]


class DynamicsTimelineLike(Protocol):
    """What the simulator needs from a cluster-dynamics timeline.

    Implemented by :class:`repro.scenarios.dynamics.DynamicsTimeline`; kept as
    a protocol here so the sim layer stays import-free of the scenario layer.
    """

    def initially_offline(self) -> Iterable[int]:
        """Processor ids that start outside the cluster (join later)."""
        ...

    def sim_events(
        self, *, next_task_id: int, rng: RNGLike = None
    ) -> Sequence[Tuple[float, EventKind, Dict[str, Any]]]:
        """The ``(time, kind, event data)`` triples to inject at run start."""
        ...


#: Valid values of :attr:`SimulationConfig.sim_backend`.
SIM_BACKENDS = ("event", "fast", "batch")


@dataclass
class SimulationConfig:
    """Knobs of the simulated environment (not of any particular scheduler)."""

    #: Smoothing factor of the master's communication-cost observations.
    comm_nu: float = 0.5
    #: Smoothing factor of the master's processor-rate observations.
    rate_nu: float = 0.5
    #: Hard cap on processed events (guards against event storms).
    max_events: int = 10_000_000
    #: Optional simulated-time horizon; ``None`` runs to completion.
    time_horizon: Optional[float] = None
    #: Simulation core: ``"fast"`` (default) replays static simulations
    #: through the batched :mod:`repro.sim.fastpath` backend (bit-identical
    #: to the event engine; runs with cluster dynamics fall back to the
    #: event loop automatically), ``"event"`` always pumps the
    #: discrete-event engine, ``"batch"`` additionally lets repeat-axis
    #: call sites stack many static replays into one structure-of-arrays
    #: pass (:mod:`repro.sim.batch`; a single :meth:`run` behaves exactly
    #: like ``"fast"``, and dynamic runs fall back per lane).
    sim_backend: str = "fast"
    #: Policy-kernel backend of the heuristic schedulers (see
    #: :mod:`repro.schedulers.kernels`): ``"vectorized"`` (dense-array
    #: kernels plus the batched immediate-mode wave, the default) or
    #: ``"loop"`` (the per-task reference path).  Both are bit-identical;
    #: only wall-clock speed differs.
    policy_backend: str = "vectorized"
    #: Attribute wall-clock cost to simulation phases (``scheduling`` —
    #: policy invocations, ``dispatch`` — worker fetches and communication
    #: sampling, ``drain`` — completion processing, including the fast
    #: path's terminal drain).  Off by default: the per-event clock reads
    #: cost real time on the hot path.  Purely observational — results are
    #: bit-identical either way; see :attr:`SimulationResult.phase_seconds`.
    phase_timing: bool = False

    def __post_init__(self) -> None:
        if self.sim_backend not in SIM_BACKENDS:
            raise SimulationError(
                f"unknown sim_backend {self.sim_backend!r}; "
                f"expected one of {list(SIM_BACKENDS)}"
            )
        if self.policy_backend not in POLICY_BACKEND_NAMES:
            raise SimulationError(
                f"unknown policy_backend {self.policy_backend!r}; "
                f"expected one of {list(POLICY_BACKEND_NAMES)}"
            )


@dataclass
class SimulationResult:
    """Everything produced by one simulated schedule."""

    scheduler_name: str
    metrics: SimulationMetrics
    trace: ExecutionTrace
    scheduler_invocations: int
    batch_sizes: List[int]
    n_tasks: int
    n_processors: int
    #: Extra tasks injected by LOAD_SPIKE dynamics (0 for static runs);
    #: ``n_tasks`` counts the base workload only.
    tasks_injected: int = 0
    #: Events the engine processed end-to-end (throughput benchmarks use this).
    events_processed: int = 0
    #: Wall-clock seconds per simulation phase (``scheduling`` / ``dispatch``
    #: / ``drain``), populated only when
    #: :attr:`SimulationConfig.phase_timing` is on.  Machine-dependent:
    #: excluded from any determinism comparison.
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Total execution time of the schedule (seconds)."""
        return self.metrics.makespan

    @property
    def efficiency(self) -> float:
        """Fraction of processor-time spent executing rather than communicating or idling."""
        return self.metrics.efficiency


class DistributedSystemSimulation:
    """One simulation run: a scheduler, a cluster, and a set of tasks."""

    def __init__(
        self,
        scheduler: Scheduler,
        cluster: Cluster,
        tasks: TaskSet,
        *,
        config: Optional[SimulationConfig] = None,
        dynamics: Optional[DynamicsTimelineLike] = None,
        rng: RNGLike = None,
    ):
        if len(tasks) == 0:
            raise SimulationError("cannot simulate an empty task set")
        self.scheduler = scheduler
        self.cluster = cluster
        self.tasks = tasks
        self.config = config or SimulationConfig()
        # The third child stream feeds the dynamics timeline (e.g. load-spike
        # task sizes).  SeedSequence children are prefix-stable, so streams 0
        # and 1 are identical to the historical two-stream spawn and static
        # simulations stay bit-identical to earlier releases.
        master_rng, network_rng, dynamics_rng = spawn_rngs(rng, 3)
        self._network_rng = network_rng
        self._dynamics_rng = dynamics_rng
        self._dynamics = dynamics

        self.engine = DiscreteEventEngine(max_events=self.config.max_events)
        self.master = Master(
            scheduler,
            cluster.n_processors,
            initial_rates=cluster.current_rates(0.0),
            comm_nu=self.config.comm_nu,
            rate_nu=self.config.rate_nu,
            policy_backend=self.config.policy_backend,
            rng=master_rng,
        )
        self.workers = [WorkerState(processor=proc) for proc in cluster.processors]
        self.trace = ExecutionTrace(cluster.n_processors)
        self._completed = 0
        self._scheduler_invocation_pending = False
        self._completion_events: Dict[int, Event] = {}
        self._queue_samples = RecordBuffer(
            (("time", float), ("unscheduled", int), ("queued", int))
        )
        self._counts = {"failures": 0, "recoveries": 0, "joins": 0}
        self._injected = 0
        self._phase_seconds = {"scheduling": 0.0, "dispatch": 0.0, "drain": 0.0}
        # Phase attribution turns on when asked for explicitly *or* when a
        # telemetry session is active at construction time (the per-run
        # phase spans would otherwise be empty).  Purely observational
        # either way: results stay bit-identical.
        self._phase_timing = self.config.phase_timing or get_session() is not None

        self.engine.register(EventKind.TASK_ARRIVAL, self._on_task_arrival)
        self.engine.register(
            EventKind.INVOKE_SCHEDULER, self._phased("scheduling", self._on_invoke_scheduler)
        )
        self.engine.register(
            EventKind.WORKER_FETCH, self._phased("dispatch", self._on_worker_fetch)
        )
        self.engine.register(
            EventKind.TASK_COMPLETION, self._phased("drain", self._on_task_completion)
        )
        if dynamics is not None:
            self.engine.register(EventKind.WORKER_FAILURE, self._on_worker_failure)
            self.engine.register(EventKind.WORKER_RECOVERY, self._on_worker_recovery)
            self.engine.register(EventKind.WORKER_JOIN, self._on_worker_join)
            self.engine.register(EventKind.LOAD_SPIKE, self._on_load_spike)
            for proc in dynamics.initially_offline():
                proc = int(proc)
                if not (0 <= proc < cluster.n_processors):
                    raise SimulationError(
                        f"dynamics timeline references processor {proc} outside "
                        f"[0, {cluster.n_processors})"
                    )
                # Not-yet-joined workers are offline from the start but accrue
                # no downtime (they were never part of the cluster).
                self.workers[proc].online = False
                self.master.mark_offline(proc)

    def _phased(
        self, phase: str, handler: Callable[[Event], None]
    ) -> Callable[[Event], None]:
        """Wrap *handler* to attribute its wall time to *phase*.

        Identity when phase timing is off, so the hot event loop pays no
        clock reads unless the attribution was asked for.
        """
        if not self._phase_timing:
            return handler
        seconds = self._phase_seconds

        def timed(event: Event) -> None:
            start = time.perf_counter()
            try:
                handler(event)
            finally:
                seconds[phase] += time.perf_counter() - start

        return timed

    # -- event handlers ---------------------------------------------------------------
    def _on_task_arrival(self, event: Event) -> None:
        task: Task = event.data["task"]
        self.master.task_arrived(task)
        self._request_scheduling(event.time)

    def _request_scheduling(self, time: float) -> None:
        if not self._scheduler_invocation_pending:
            self._scheduler_invocation_pending = True
            self.engine.schedule(time, EventKind.INVOKE_SCHEDULER)

    def _sample_queues(self, time: float) -> None:
        self._queue_samples.append(time, self.master.n_unscheduled, self.master.n_queued_total)

    def _on_invoke_scheduler(self, event: Event) -> None:
        self._scheduler_invocation_pending = False
        self._sample_queues(event.time)
        assigned = self.master.schedule_all_available(event.time)
        if assigned == 0:
            return
        # Wake every idle online worker whose queue now has work.
        for worker in self.workers:
            if (
                worker.online
                and not worker.is_busy
                and self.master.queue_length(worker.proc_id) > 0
            ):
                self.engine.schedule(event.time, EventKind.WORKER_FETCH, proc=worker.proc_id)

    def _on_worker_fetch(self, event: Event) -> None:
        proc = int(event.data["proc"])
        worker = self.workers[proc]
        if not worker.online:
            return  # stale wake-up for a worker that failed in the meantime
        if worker.is_busy:
            return  # stale wake-up: the worker already fetched something
        task = self.master.pop_task_for(proc)
        if task is None:
            # Queue ran dry: ask for more work if any remains unscheduled.
            if self.master.has_unscheduled():
                self._request_scheduling(event.time)
            return
        comm_cost = self.cluster.network.sample_cost(proc, self._network_rng, time=event.time)
        completion_time = worker.start_task(task, event.time, comm_cost)
        self.master.observe_dispatch(proc, comm_cost, event.time)
        self._completion_events[proc] = self.engine.schedule(
            completion_time,
            EventKind.TASK_COMPLETION,
            proc=proc,
            task=task,
            dispatch_time=event.time,
            comm_cost=comm_cost,
        )

    def _on_task_completion(self, event: Event) -> None:
        proc = int(event.data["proc"])
        task: Task = event.data["task"]
        dispatch_time: float = event.data["dispatch_time"]
        comm_cost: float = event.data["comm_cost"]
        worker = self.workers[proc]
        worker.finish_task(event.time)
        self._completion_events.pop(proc, None)

        exec_start = dispatch_time + comm_cost
        exec_seconds = event.time - exec_start
        worker.record_execution(exec_seconds)
        self.master.observe_completion(proc, task, exec_seconds, event.time)
        self.trace.add_record(
            task.task_id,
            proc,
            task.size_mflops,
            task.arrival_time,
            self.master.assigned_time_of(task.task_id),
            dispatch_time,
            exec_start,
            event.time,
        )
        self._completed += 1
        # Fetch the next task (or trigger another scheduling round).
        self.engine.schedule(event.time, EventKind.WORKER_FETCH, proc=proc)

    # -- dynamics handlers ------------------------------------------------------------
    def _on_worker_failure(self, event: Event) -> None:
        proc = int(event.data["proc"])
        worker = self.workers[proc]
        if not worker.online:
            return  # duplicate failure of an already offline worker: no-op
        inflight = worker.fail(event.time)
        pending = self._completion_events.pop(proc, None)
        if pending is not None:
            self.engine.cancel(pending)
        requeued = self.master.mark_offline(proc, inflight)
        self._counts["failures"] += 1
        self._sample_queues(event.time)
        if requeued and self.master.online_processors():
            self._request_scheduling(event.time)

    def _come_online(self, proc: int, time: float) -> None:
        worker = self.workers[proc]
        if worker.online:
            return  # duplicate recovery/join: no-op
        worker.come_online(time)
        self.master.mark_online(proc)
        # Membership changed: pull back every undispatched task and re-invoke
        # the policy so it can spread the backlog over the new member (the
        # per-processor queues live at the master precisely to allow this).
        self.master.reclaim_undispatched()
        self._sample_queues(time)
        if self.master.has_unscheduled():
            self._request_scheduling(time)

    def _on_worker_recovery(self, event: Event) -> None:
        proc = int(event.data["proc"])
        if not self.workers[proc].online:
            self._counts["recoveries"] += 1
        self._come_online(proc, event.time)

    def _on_worker_join(self, event: Event) -> None:
        proc = int(event.data["proc"])
        if not self.workers[proc].online:
            self._counts["joins"] += 1
        self._come_online(proc, event.time)

    def _on_load_spike(self, event: Event) -> None:
        tasks: Sequence[Task] = event.data["tasks"]
        # Counted here (not at schedule time) so a time_horizon that cuts the
        # run short never claims injections that were never delivered.
        self._injected += len(tasks)
        for task in tasks:
            self.master.task_arrived(task)
        self._sample_queues(event.time)
        if tasks:
            self._request_scheduling(event.time)

    # -- run -------------------------------------------------------------------------------
    def uses_fast_path(self) -> bool:
        """Whether :meth:`run` will take the batched static-replay backend.

        The ``"batch"`` backend is the fast path plus a repeat-axis entry
        point (:func:`repro.sim.batch.run_batched_replay`); a single
        :meth:`run` under it is exactly a ``"fast"`` run.
        """
        return self.config.sim_backend in ("fast", "batch") and is_static(self)

    def _run_event_driven(self) -> Tuple[float, int]:
        """Pump the discrete-event engine; returns (end time, events processed)."""
        for task in self.tasks:
            self.engine.schedule(task.arrival_time, EventKind.TASK_ARRIVAL, task=task)
        if self._dynamics is not None:
            next_task_id = max(task.task_id for task in self.tasks) + 1
            for time, kind, data in self._dynamics.sim_events(
                next_task_id=next_task_id, rng=self._dynamics_rng
            ):
                self.engine.schedule(time, kind, **data)
        end_time = self.engine.run(until=self.config.time_horizon)
        return end_time, self.engine.processed_events

    def run(self) -> SimulationResult:
        """Execute the simulation to completion and return metrics plus trace.

        With an active telemetry session the run is wrapped in a
        ``sim:run`` span with one ``phase:*`` child per accumulated phase,
        and the run's volume counters/histograms (events processed,
        tombstones skipped, kernel batch sizes, queue depths) land in the
        session's metrics registry.  All of it reads clocks and counters
        only — never an RNG stream — so the result is bit-identical to an
        unobserved run.
        """
        session = get_session()
        if session is None:
            return self._run_impl()
        with session.span(
            "sim:run",
            scheduler=self.scheduler.name,
            backend="fast" if self.uses_fast_path() else "event",
            n_tasks=len(self.tasks),
            n_processors=self.cluster.n_processors,
        ):
            result = self._run_impl()
            for phase, seconds in self._phase_seconds.items():
                session.record_span(f"phase:{phase}", seconds)
            metrics = session.metrics
            metrics.counter("sim.runs").inc()
            metrics.counter("sim.events_processed").inc(result.events_processed)
            metrics.counter("sim.tombstones_skipped").inc(
                self.engine.queue.tombstones_skipped
            )
            metrics.counter("sim.scheduler_invocations").inc(
                result.scheduler_invocations
            )
            if result.batch_sizes:
                metrics.histogram("sim.batch_sizes").observe_many(result.batch_sizes)
            if len(self._queue_samples):
                metrics.histogram("sim.queue_depth").observe_many(
                    self._queue_samples.column("queued")
                )
        return result

    def _run_impl(self) -> SimulationResult:
        self.scheduler.reset()
        if self.uses_fast_path():
            end_time, events_processed = run_static_replay(self)
        else:
            end_time, events_processed = self._run_event_driven()
        return self._finalise(end_time, events_processed)

    def _finalise(self, end_time: float, events_processed: int) -> SimulationResult:
        """Turn the post-run mutable state into a :class:`SimulationResult`.

        Shared by every backend: the event engine, the static replay and the
        repeat-axis batch runner (:mod:`repro.sim.batch`) all leave the same
        result-visible state behind and finish through this one path.
        """
        expected = len(self.tasks) + self._injected
        if self.config.time_horizon is None and self._completed != expected:
            raise SimulationError(
                f"simulation finished with {self._completed}/{expected} tasks completed"
            )
        for worker in self.workers:
            worker.finalise_downtime(end_time)
        dynamics_stats = DynamicsStats(
            tasks_rescheduled=self.master.tasks_rescheduled,
            tasks_reclaimed=self.master.tasks_reclaimed,
            tasks_redirected=self.master.tasks_redirected,
            worker_failures=self._counts["failures"],
            worker_recoveries=self._counts["recoveries"],
            worker_joins=self._counts["joins"],
            tasks_injected=self._injected,
            worker_downtime_seconds=float(
                sum(worker.downtime_seconds for worker in self.workers)
            ),
            queue_length_trajectory=tuple(
                (float(t), int(unscheduled), int(queued))
                for t, unscheduled, queued in zip(
                    self._queue_samples.column("time"),
                    self._queue_samples.column("unscheduled"),
                    self._queue_samples.column("queued"),
                )
            ),
        )
        metrics = compute_metrics(self.trace, dynamics=dynamics_stats)
        return SimulationResult(
            scheduler_name=self.scheduler.name,
            metrics=metrics,
            trace=self.trace,
            scheduler_invocations=self.master.invocations,
            batch_sizes=list(self.master.batch_sizes),
            n_tasks=len(self.tasks),
            n_processors=self.cluster.n_processors,
            tasks_injected=self._injected,
            events_processed=events_processed,
            phase_seconds=(dict(self._phase_seconds) if self._phase_timing else {}),
        )


def simulate_schedule(
    scheduler: Scheduler,
    cluster: Cluster,
    tasks: TaskSet,
    *,
    config: Optional[SimulationConfig] = None,
    dynamics: Optional[DynamicsTimelineLike] = None,
    rng: RNGLike = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`DistributedSystemSimulation` and run it."""
    simulation = DistributedSystemSimulation(
        scheduler, cluster, tasks, config=config, dynamics=dynamics, rng=rng
    )
    return simulation.run()
