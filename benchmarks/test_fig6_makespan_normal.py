"""Paper Fig. 6 — makespan per scheduler, normal(1000 MFLOPs, 9e5) task sizes.

Paper claim reproduced here: PN outperforms all the other schedulers in total
execution time on the normally distributed workload.
"""

import pytest

from repro.experiments import figure6
from repro.experiments.reporting import figure_report

from _bars import assert_common_bar_shape
from _shared import FigureCache

_cache = FigureCache()


@pytest.fixture
def result(scale, seed):
    return _cache.get("fig6", lambda: figure6(scale=scale, seed=seed))


def test_fig6_makespan_normal(benchmark, scale, seed):
    """Time the full Fig. 6 comparison (all seven schedulers)."""
    outcome = _cache.run_once("fig6", lambda: figure6(scale=scale, seed=seed), benchmark)
    assert outcome.kind == "bars"


class TestShape:
    def test_common_bar_shape(self, result):
        assert_common_bar_shape(result, pn_max_rank=2)

    def test_pn_beats_every_immediate_heuristic(self, result):
        bars = result.bar_values()
        for name in ("EF", "LL", "RR"):
            assert bars["PN"] <= bars[name] * 1.02

    def test_report_renders(self, result):
        assert "fig6" in figure_report(result)
