"""Tests for the master (scheduling host) and worker models."""

import numpy as np
import pytest

from repro.cluster import ConstantAvailability, Processor
from repro.schedulers import EarliestFirstScheduler, MinMinScheduler
from repro.sim import Master, WorkerState
from repro.util.errors import SimulationError
from repro.workloads import Task


def make_master(scheduler=None, n=3, rates=(10.0, 20.0, 40.0)):
    return Master(
        scheduler or EarliestFirstScheduler(),
        n_processors=n,
        initial_rates=np.asarray(rates, dtype=float),
        rng=0,
    )


class TestMasterQueues:
    def test_arrivals_join_unscheduled_queue(self):
        master = make_master()
        master.task_arrived(Task(0, 10.0))
        master.task_arrived(Task(1, 20.0))
        assert master.n_unscheduled == 2
        assert master.has_unscheduled()

    def test_run_scheduler_once_moves_tasks_to_proc_queues(self):
        master = make_master()
        for i in range(5):
            master.task_arrived(Task(i, 100.0))
        assignment = master.run_scheduler_once(time=0.0)
        assert assignment.n_tasks == 1  # EF is immediate mode: one task per invocation
        assert master.n_unscheduled == 4
        assert master.pending_loads.sum() == pytest.approx(100.0)

    def test_schedule_all_available_drains_immediate_mode(self):
        master = make_master()
        for i in range(7):
            master.task_arrived(Task(i, 100.0))
        assigned = master.schedule_all_available(time=0.0)
        assert assigned == 7
        assert master.n_unscheduled == 0
        assert master.pending_loads.sum() == pytest.approx(700.0)

    def test_batch_mode_keeps_residual_unscheduled(self):
        master = make_master(scheduler=MinMinScheduler(batch_size=2), n=2, rates=(10.0, 10.0))
        for i in range(10):
            master.task_arrived(Task(i, 50.0))
        master.schedule_all_available(time=0.0)
        # batches of 2 are scheduled until no processor queue is empty, then it stops
        assert master.n_unscheduled > 0
        assert all(len(q) > 0 for q in master.proc_queues)

    def test_scheduler_invocations_counted(self):
        master = make_master()
        for i in range(3):
            master.task_arrived(Task(i, 10.0))
        master.schedule_all_available(time=0.0)
        assert master.invocations == 3
        assert master.batch_sizes == [1, 1, 1]

    def test_pop_task_for(self):
        master = make_master()
        master.task_arrived(Task(0, 10.0))
        master.schedule_all_available(time=0.0)
        proc = next(p for p in range(3) if master.queue_length(p) > 0)
        task = master.pop_task_for(proc)
        assert task.task_id == 0
        assert master.pop_task_for(proc) is None

    def test_assigned_time_recorded(self):
        master = make_master()
        master.task_arrived(Task(0, 10.0))
        master.schedule_all_available(time=3.5)
        assert master.assigned_time_of(0) == 3.5
        with pytest.raises(SimulationError):
            master.assigned_time_of(99)

    def test_empty_queue_scheduling_is_noop(self):
        master = make_master()
        assert master.run_scheduler_once(time=0.0) is None
        assert master.schedule_all_available(time=0.0) == 0


class TestMasterEstimates:
    def test_initial_rates_used_before_observations(self):
        master = make_master()
        assert master.estimated_rates().tolist() == [10.0, 20.0, 40.0]

    def test_rate_estimates_updated_from_completions(self):
        master = make_master()
        master.pending_loads[:] = [100.0, 0.0, 0.0]
        master.observe_completion(0, Task(0, 100.0), processing_time=20.0, time=20.0)
        assert master.estimated_rates()[0] == pytest.approx(5.0)
        assert master.pending_loads[0] == 0.0

    def test_comm_estimates_updated_from_dispatches(self):
        master = make_master()
        assert master.estimated_comm_costs().tolist() == [0.0, 0.0, 0.0]
        master.observe_dispatch(1, comm_cost=4.0, time=0.0)
        assert master.estimated_comm_costs()[1] == 4.0

    def test_context_reflects_estimates(self):
        master = make_master()
        master.observe_dispatch(0, comm_cost=2.0, time=0.0)
        ctx = master.build_context(time=1.0)
        assert ctx.time == 1.0
        assert ctx.comm_costs[0] == 2.0
        assert ctx.rates.tolist() == [10.0, 20.0, 40.0]

    def test_invalid_processor_index(self):
        master = make_master()
        with pytest.raises(SimulationError):
            master.observe_dispatch(9, 1.0, 0.0)

    def test_invalid_initial_rates(self):
        with pytest.raises(SimulationError):
            Master(EarliestFirstScheduler(), 2, initial_rates=np.array([1.0]))
        with pytest.raises(SimulationError):
            Master(EarliestFirstScheduler(), 2, initial_rates=np.array([1.0, 0.0]))


class TestWorkerState:
    def make_worker(self, rate=100.0, availability=None):
        proc = Processor(
            proc_id=0,
            peak_rate_mflops=rate,
            availability=availability or ConstantAvailability(1.0),
        )
        return WorkerState(processor=proc)

    def test_start_and_finish_task(self):
        worker = self.make_worker(rate=100.0)
        task = Task(0, 500.0)
        completion = worker.start_task(task, now=10.0, comm_cost=2.0)
        assert completion == pytest.approx(17.0)  # 10 + 2 + 500/100
        assert worker.is_busy
        finished = worker.finish_task(now=completion)
        assert finished is task
        assert not worker.is_busy
        assert worker.tasks_completed == 1

    def test_cannot_start_while_busy(self):
        worker = self.make_worker()
        worker.start_task(Task(0, 100.0), now=0.0, comm_cost=0.0)
        with pytest.raises(SimulationError):
            worker.start_task(Task(1, 100.0), now=0.0, comm_cost=0.0)

    def test_cannot_finish_before_completion_time(self):
        worker = self.make_worker()
        worker.start_task(Task(0, 100.0), now=0.0, comm_cost=0.0)
        with pytest.raises(SimulationError):
            worker.finish_task(now=0.1)

    def test_cannot_finish_without_task(self):
        with pytest.raises(SimulationError):
            self.make_worker().finish_task(now=1.0)

    def test_execution_rate_reflects_availability(self):
        worker = self.make_worker(rate=100.0, availability=ConstantAvailability(0.5))
        completion = worker.start_task(Task(0, 100.0), now=0.0, comm_cost=0.0)
        assert completion == pytest.approx(2.0)  # effective rate 50 Mflop/s

    def test_comm_seconds_accumulated(self):
        worker = self.make_worker()
        worker.start_task(Task(0, 100.0), now=0.0, comm_cost=3.0)
        assert worker.comm_seconds == 3.0

    def test_negative_comm_cost_rejected(self):
        with pytest.raises(SimulationError):
            self.make_worker().start_task(Task(0, 1.0), now=0.0, comm_cost=-1.0)

    def test_record_execution(self):
        worker = self.make_worker()
        worker.record_execution(2.5)
        assert worker.busy_seconds == 2.5
        with pytest.raises(SimulationError):
            worker.record_execution(-1.0)
