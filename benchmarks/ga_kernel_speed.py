#!/usr/bin/env python3
"""Benchmark: loop vs vectorized GA operator kernels, in generations/second.

Runs the same seeded `GeneticAlgorithm.evolve` once per kernel backend on a
representative batch problem and reports how many GA generations each backend
sustains per second.  Two preset sizes are built in:

* ``smoke`` — a CI-sized problem (population 20, 80 tasks, 5 processors);
* ``paper`` — the paper-scale hot path (population 50, 200 tasks,
  20 processors).

Record mode (the default) writes a BENCH json record::

    PYTHONPATH=src python benchmarks/ga_kernel_speed.py \
        --scale paper --output benchmarks/BENCH_ga_kernels.json

Check mode re-measures the requested scale and gates against the committed
record (used by the CI ``bench-gate`` job)::

    PYTHONPATH=src python benchmarks/ga_kernel_speed.py --scale smoke --check

The gate compares *speedups* (vectorized over loop generations/sec), which
are stable across machines where absolute rates are not.  It fails when the
vectorized backend falls behind the loop backend (speedup < 1) or when its
speedup regresses more than ``--tolerance`` (default 25 %) below the
committed reference for that scale.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.ga import BACKEND_NAMES, BatchProblem, GAConfig, GeneticAlgorithm

DEFAULT_RECORD = os.path.join(os.path.dirname(__file__), "BENCH_ga_kernels.json")


@dataclass(frozen=True)
class KernelScale:
    """One benchmark problem size."""

    name: str
    population_size: int
    n_tasks: int
    n_processors: int
    generations: int


SCALES: Dict[str, KernelScale] = {
    "smoke": KernelScale(
        name="smoke", population_size=20, n_tasks=80, n_processors=5, generations=60
    ),
    "paper": KernelScale(
        name="paper", population_size=50, n_tasks=200, n_processors=20, generations=60
    ),
}


def build_problem(scale: KernelScale, seed: int) -> BatchProblem:
    """A heterogeneous batch problem matching the paper's workload shapes."""
    rng = np.random.default_rng(seed)
    return BatchProblem(
        task_ids=np.arange(scale.n_tasks),
        sizes=rng.normal(500.0, 150.0, scale.n_tasks).clip(min=10.0),
        rates=rng.uniform(10.0, 500.0, scale.n_processors),
        pending_loads=rng.uniform(0.0, 500.0, scale.n_processors),
        comm_costs=rng.uniform(0.0, 2.0, scale.n_processors),
    )


def generations_per_second(
    scale: KernelScale, backend: str, seed: int, repeats: int
) -> float:
    """Best-of-*repeats* generation throughput of one backend."""
    problem = build_problem(scale, seed)
    config = GAConfig(
        population_size=scale.population_size,
        max_generations=scale.generations,
        n_rebalances=1,
        backend=backend,
    )
    best = 0.0
    for repeat in range(repeats):
        engine = GeneticAlgorithm(config, rng=seed + repeat)
        start = time.perf_counter()
        result = engine.evolve(problem)
        elapsed = time.perf_counter() - start
        best = max(best, result.generations / elapsed)
    return best


def measure_scale(scale: KernelScale, seed: int, repeats: int) -> Dict[str, object]:
    """Loop and vectorized throughput (plus their ratio) for one scale."""
    rates = {
        backend: generations_per_second(scale, backend, seed, repeats)
        for backend in BACKEND_NAMES
    }
    return {
        "population_size": scale.population_size,
        "n_tasks": scale.n_tasks,
        "n_processors": scale.n_processors,
        "generations": scale.generations,
        "generations_per_second": {k: round(v, 2) for k, v in rates.items()},
        "speedup": round(rates["vectorized"] / rates["loop"], 3),
    }


def run_record(args: argparse.Namespace) -> int:
    names = sorted(SCALES) if args.scale == "all" else [args.scale]
    record = {
        "benchmark": "ga_kernel_speed/loop_vs_vectorized",
        "seed": args.seed,
        "repeats": args.repeats,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scales": {name: measure_scale(SCALES[name], args.seed, args.repeats) for name in names},
    }
    print(json.dumps(record, indent=2))
    if args.output:
        with open(args.output, "w", encoding="utf8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
    return 0


def run_check(args: argparse.Namespace) -> int:
    if args.scale == "all":
        print("error: --check gates one scale at a time", file=sys.stderr)
        return 2
    with open(args.record, encoding="utf8") as handle:
        committed = json.load(handle)
    reference = committed["scales"].get(args.scale)
    if reference is None:
        print(f"error: {args.record} has no '{args.scale}' scale", file=sys.stderr)
        return 2

    measured = measure_scale(SCALES[args.scale], args.seed, args.repeats)
    speedup = measured["speedup"]
    reference_speedup = reference["speedup"]
    floor = reference_speedup * (1.0 - args.tolerance)
    print(
        f"ga_kernel_speed --check [{args.scale}]: measured speedup {speedup:.2f}x, "
        f"committed {reference_speedup:.2f}x, floor {floor:.2f}x"
    )
    print(json.dumps(measured, indent=2))
    if speedup < 1.0:
        print(
            "FAIL: vectorized backend is slower than the loop backend", file=sys.stderr
        )
        return 1
    if speedup < floor:
        print(
            f"FAIL: speedup regressed more than {args.tolerance:.0%} below the "
            f"committed record ({speedup:.2f}x < {floor:.2f}x)",
            file=sys.stderr,
        )
        return 1
    print("PASS: vectorized backend within budget")
    return 0


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default="all",
        choices=[*sorted(SCALES), "all"],
        help="benchmark size to run (default: all)",
    )
    parser.add_argument("--seed", type=int, default=42, help="master random seed")
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats; the best is kept"
    )
    parser.add_argument("--output", default=None, help="write the BENCH json here")
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate the measured speedup against the committed record",
    )
    parser.add_argument(
        "--record",
        default=DEFAULT_RECORD,
        help="committed BENCH json to gate against (with --check)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional speedup regression before --check fails",
    )
    return parser.parse_args()


def main() -> int:
    args = parse_args()
    if args.check:
        return run_check(args)
    return run_record(args)


if __name__ == "__main__":
    raise SystemExit(main())
