"""Simulated Linpack-style benchmark for rating processors.

The paper measures each processor's execution rate with Dongarra's Linpack
benchmark, expressed in Mflop/s.  A real Linpack run is obviously outside the
scope of a simulation library, so this module provides a *synthetic*
equivalent: it computes the floating-point operation count of an ``n x n``
LU solve (``2/3 n^3 + 2 n^2`` flops, the standard Linpack accounting) and
divides it by a simulated execution time derived from the processor model.
Only the resulting Mflop/s number is consumed by the schedulers, so the
substitution preserves all scheduling behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..util.rng import RNGLike, ensure_rng
from ..util.validation import require_non_negative, require_positive, require_positive_int
from .processor import Processor

__all__ = ["LinpackResult", "linpack_flop_count", "benchmark_processor", "benchmark_cluster_rates"]

#: Default problem dimension; Linpack's classic 1000x1000 case.
DEFAULT_PROBLEM_SIZE = 1000


def linpack_flop_count(n: int = DEFAULT_PROBLEM_SIZE) -> float:
    """Number of floating point operations of an ``n x n`` LU solve.

    Uses the standard Linpack operation count ``2/3 n^3 + 2 n^2``.
    """
    n = require_positive_int(n, "problem size")
    return (2.0 / 3.0) * n**3 + 2.0 * n**2


@dataclass(frozen=True)
class LinpackResult:
    """Outcome of one simulated Linpack measurement."""

    proc_id: int
    problem_size: int
    flops: float
    elapsed_seconds: float
    rate_mflops: float

    def __post_init__(self) -> None:
        require_positive(self.rate_mflops, "rate_mflops")


def benchmark_processor(
    processor: Processor,
    *,
    problem_size: int = DEFAULT_PROBLEM_SIZE,
    at_time: float = 0.0,
    measurement_noise: float = 0.02,
    rng: RNGLike = None,
) -> LinpackResult:
    """Simulate running Linpack on *processor* and return its measured rating.

    The measured rate equals the processor's effective rate at *at_time*
    perturbed by multiplicative Gaussian noise of relative magnitude
    *measurement_noise* (benchmarks never repeat exactly).  The result is
    clamped to stay strictly positive.
    """
    require_non_negative(at_time, "at_time")
    require_non_negative(measurement_noise, "measurement_noise")
    gen = ensure_rng(rng)
    flops = linpack_flop_count(problem_size)
    true_rate = processor.current_rate(at_time)  # Mflop/s
    noise = gen.normal(1.0, measurement_noise) if measurement_noise > 0 else 1.0
    measured_rate = max(true_rate * noise, 1e-6)
    elapsed = flops / (measured_rate * 1e6)
    return LinpackResult(
        proc_id=processor.proc_id,
        problem_size=problem_size,
        flops=flops,
        elapsed_seconds=elapsed,
        rate_mflops=measured_rate,
    )


def benchmark_cluster_rates(
    processors: Sequence[Processor],
    *,
    problem_size: int = DEFAULT_PROBLEM_SIZE,
    at_time: float = 0.0,
    measurement_noise: float = 0.02,
    rng: RNGLike = None,
) -> np.ndarray:
    """Measured Mflop/s ratings for each processor, in input order."""
    gen = ensure_rng(rng)
    results: List[float] = []
    for proc in processors:
        result = benchmark_processor(
            proc,
            problem_size=problem_size,
            at_time=at_time,
            measurement_noise=measurement_noise,
            rng=gen,
        )
        results.append(result.rate_mflops)
    return np.asarray(results, dtype=float)
