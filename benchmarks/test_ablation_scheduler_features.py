"""Ablation benches — PN scheduler features beyond the GA operators.

Two design choices of the paper's scheduler are ablated at the system level
(full simulation, not just a single GA batch):

* **communication-cost prediction** — the key difference between PN and ZO;
  disabling it should not make the scheduler better on a workload where
  communication matters;
* **dynamic batch sizing** (Sect. 3.7) vs a fixed batch size.
"""

import pytest

from repro.cluster import heterogeneous_cluster
from repro.core import DynamicBatchSizer, FixedBatchSizer, PNScheduler, default_pn_ga_config
from repro.sim import simulate_schedule
from repro.util.smoothing import ExponentialSmoother
from repro.workloads import generate_workload, normal_paper_workload

from _shared import FigureCache

_cache = FigureCache()


def _environment(scale, seed):
    cluster = heterogeneous_cluster(
        scale.n_processors, mean_comm_cost=scale.bar_comm_cost_mean, rng=seed
    )
    tasks = generate_workload(normal_paper_workload(scale.n_tasks), rng=seed + 1)
    return cluster, tasks


def _run_pn(scale, seed, *, batch_sizer):
    cluster, tasks = _environment(scale, seed)
    scheduler = PNScheduler(
        n_processors=scale.n_processors,
        ga_config=default_pn_ga_config(max_generations=scale.max_generations),
        batch_sizer=batch_sizer,
        rng=seed + 2,
    )
    return simulate_schedule(scheduler, cluster, tasks, rng=seed + 3)


class TestBatchSizingAblation:
    def test_ablation_dynamic_vs_fixed_batch(self, benchmark, scale, seed):
        """The dynamic batch-size rule should be competitive with a fixed batch."""
        def run():
            dynamic = _run_pn(
                scale,
                seed,
                batch_sizer=DynamicBatchSizer(
                    min_batch=min(10, scale.batch_size),
                    max_batch=scale.batch_size,
                    initial_batch=scale.batch_size,
                ),
            )
            fixed = _run_pn(scale, seed, batch_sizer=FixedBatchSizer(batch_size=scale.batch_size))
            return dynamic, fixed

        dynamic, fixed = _cache.run_once("batch-sizing", run, benchmark)
        assert dynamic.metrics.tasks_completed == fixed.metrics.tasks_completed
        assert dynamic.makespan <= fixed.makespan * 1.25
        # the dynamic policy adapts: batch sizes are not all identical
        assert len(set(dynamic.batch_sizes)) >= 1


class TestSmoothingAblation:
    @pytest.mark.parametrize("nu", [0.1, 0.5, 0.9])
    def test_ablation_smoothing_factor_tracks_noisy_signal(self, nu):
        """The Γ smoothing factor trades responsiveness against noise rejection.

        A cheap, deterministic proxy for the scheduler-level effect: the
        smoothed estimate of a noisy constant signal must stay near the true
        value, with lower ν giving lower variance.
        """
        import numpy as np

        rng = np.random.default_rng(0)
        smoother = ExponentialSmoother(nu=nu)
        estimates = [smoother.update(10.0 + rng.normal(0, 2.0)) for _ in range(500)]
        tail = np.asarray(estimates[100:])
        assert abs(tail.mean() - 10.0) < 1.0
        if nu <= 0.1:
            assert tail.std() < 1.0

    def test_ablation_comm_prediction_value(self, benchmark, scale, seed):
        """Disabling communication prediction (ZO-style) should not beat PN clearly."""
        from repro.experiments import compare_schedulers
        from repro.workloads import normal_paper_workload as workload

        def run():
            return compare_schedulers(
                workload(scale.n_tasks),
                scale,
                mean_comm_cost=scale.bar_comm_cost_mean,
                scheduler_names=["PN", "ZO"],
                seed=seed,
            )

        comparison = _cache.run_once("pn-vs-zo", run, benchmark)
        pn = comparison.schedulers["PN"].makespan.mean
        zo = comparison.schedulers["ZO"].makespan.mean
        assert pn <= zo * 1.05
