"""The named scenario library.

Mirrors :mod:`repro.schedulers.registry`: every scenario is discoverable by a
stable name and constructed by a builder parameterised by an
:class:`~repro.experiments.config.ExperimentScale`, so the same scenario
shape runs at ``smoke`` scale in CI and at ``paper`` scale for real studies.

The built-in scenarios cover the cluster-dynamics axes the paper's
motivation names but its experiments abstract away:

========================  ====================================================
``steady-state``          control: fixed membership, dedicated nodes
``diurnal-load``          background load cycles + arrivals over a window
``flash-crowd``           sudden bursts of extra tasks mid-run
``failure-storm``         a third of the cluster fails, later recovers
``rolling-restart``       staggered fail/recover pairs sweep the cluster
``elastic-scale-out``     reserve workers join while the queue drains
``straggler-node``        one node pinned to a sliver of its peak rate
``heavy-tail-mix``        1:1000 task sizes + failure + join + spike
``trace-diurnal``         sinusoidal piecewise-rate (IPP) arrival profile
``trace-bursty``          calm/burst piecewise-rate (IPP) arrival profile
========================  ====================================================

Event times are expressed as fractions of a crude makespan estimate
(total work over aggregate mean rate), which keeps every scenario's dynamics
inside the run at any scale.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..experiments.config import ExperimentScale, default_scale
from ..util.errors import ConfigurationError
from ..workloads.arrival import BurstArrivals, UniformArrivals
from ..workloads.distributions import UniformSizes
from ..workloads.generator import WorkloadSpec
from ..workloads.suites import (
    normal_paper_workload,
    poisson_small_workload,
    uniform_wide_workload,
)
from ..workloads.traces import bursty_profile, diurnal_profile
from .dynamics import LoadSpike, WorkerFailure, WorkerJoin, WorkerRecovery
from .spec import ClusterSpec, ScenarioSpec

__all__ = [
    "SCENARIO_BUILDERS",
    "scenario_names",
    "get_scenario",
    "make_all_scenarios",
]

#: Midpoint of the default heterogeneous peak-rate range (Mflop/s); good
#: enough for sizing event times relative to the expected run length.
_MEAN_PEAK_RATE = 275.0


def _horizon(
    scale: ExperimentScale, workload: WorkloadSpec, mean_comm_cost: float = 10.0
) -> float:
    """Crude makespan estimate: compute time plus dispatch time, both spread
    over the cluster (links transfer in parallel, one per worker)."""
    n = max(scale.n_processors, 1)
    compute = workload.n_tasks * workload.sizes.mean() / (n * _MEAN_PEAK_RATE)
    dispatch = workload.n_tasks * mean_comm_cost / n
    return max(compute + dispatch, 1.0)


def _steady_state(scale: ExperimentScale) -> ScenarioSpec:
    return ScenarioSpec(
        name="steady-state",
        description=(
            "Control scenario: dedicated heterogeneous cluster, fixed "
            "membership, the paper's normal workload."
        ),
        cluster=ClusterSpec(n_processors=scale.n_processors),
        workload=normal_paper_workload(scale.n_tasks),
        tags=("control",),
    )


def _diurnal_load(scale: ExperimentScale) -> ScenarioSpec:
    workload = normal_paper_workload(scale.n_tasks)
    horizon = _horizon(scale, workload)
    workload.arrivals = UniformArrivals(duration=0.5 * horizon)
    return ScenarioSpec(
        name="diurnal-load",
        description=(
            "Non-dedicated nodes with sinusoidal/random-walk background load; "
            "tasks trickle in over half the horizon."
        ),
        cluster=ClusterSpec(n_processors=scale.n_processors, kind="varying"),
        workload=workload,
        tags=("availability",),
    )


def _flash_crowd(scale: ExperimentScale) -> ScenarioSpec:
    workload = poisson_small_workload(scale.n_tasks)
    horizon = _horizon(scale, workload)
    spike_tasks = max(1, scale.n_tasks // 2)
    sizes = workload.sizes
    return ScenarioSpec(
        name="flash-crowd",
        description=(
            "Two sudden bursts of extra tasks (each half the base workload) "
            "land mid-run on top of small Poisson tasks."
        ),
        cluster=ClusterSpec(n_processors=scale.n_processors),
        workload=workload,
        dynamics=(
            LoadSpike(time=0.3 * horizon, n_tasks=spike_tasks, sizes=sizes),
            LoadSpike(time=0.6 * horizon, n_tasks=spike_tasks, sizes=sizes),
        ),
        tags=("load",),
    )


def _failure_storm(scale: ExperimentScale) -> ScenarioSpec:
    workload = normal_paper_workload(scale.n_tasks)
    horizon = _horizon(scale, workload)
    n = scale.n_processors
    n_failing = min(max(1, n // 3), n - 1)
    dynamics = []
    for i in range(n_failing):
        fail_at = (0.15 + 0.15 * i / max(n_failing - 1, 1)) * horizon
        recover_at = (0.55 + 0.2 * i / max(n_failing - 1, 1)) * horizon
        dynamics.append(WorkerFailure(time=fail_at, proc=i))
        dynamics.append(WorkerRecovery(time=recover_at, proc=i))
    return ScenarioSpec(
        name="failure-storm",
        description=(
            "A third of the workers fail in a short window mid-run and "
            "recover much later; their queued work is rescheduled."
        ),
        cluster=ClusterSpec(n_processors=n),
        workload=workload,
        dynamics=tuple(dynamics),
        tags=("faults",),
    )


def _rolling_restart(scale: ExperimentScale) -> ScenarioSpec:
    workload = normal_paper_workload(scale.n_tasks)
    horizon = _horizon(scale, workload)
    n = scale.n_processors
    # Restarts are spaced 0.6*horizon/n apart; capping the outage strictly
    # below twice that spacing keeps at most two workers down simultaneously
    # at every scale (at smoke scale the 8%-of-horizon cap binds instead).
    spacing = 0.6 * horizon / max(n, 1)
    outage = min(0.08 * horizon, 1.9 * spacing)
    dynamics = []
    for i in range(n):
        fail_at = 0.1 * horizon + spacing * i
        dynamics.append(WorkerFailure(time=fail_at, proc=i))
        dynamics.append(WorkerRecovery(time=fail_at + outage, proc=i))
    return ScenarioSpec(
        name="rolling-restart",
        description=(
            "Every worker is restarted once in a staggered sweep "
            "(maintenance roll); at most two workers are down at a time."
        ),
        cluster=ClusterSpec(n_processors=n),
        workload=workload,
        dynamics=tuple(dynamics),
        tags=("faults", "maintenance"),
    )


def _elastic_scale_out(scale: ExperimentScale) -> ScenarioSpec:
    total = scale.n_processors
    reserve = min(max(1, total // 3), total - 1)
    base = total - reserve
    workload = normal_paper_workload(scale.n_tasks)
    horizon = _horizon(scale, workload)
    dynamics = tuple(
        WorkerJoin(time=(0.15 + 0.4 * i / max(reserve - 1, 1)) * horizon, proc=base + i)
        for i in range(reserve)
    )
    return ScenarioSpec(
        name="elastic-scale-out",
        description=(
            "A third of the capacity is pre-provisioned reserve that joins "
            "in waves while the queue drains."
        ),
        cluster=ClusterSpec(n_processors=base, reserve_processors=reserve),
        workload=workload,
        dynamics=dynamics,
        tags=("elasticity",),
    )


def _straggler_node(scale: ExperimentScale) -> ScenarioSpec:
    return ScenarioSpec(
        name="straggler-node",
        description=(
            "One node offers only 15% of its peak rate for the whole run; "
            "rate-aware policies should starve it."
        ),
        cluster=ClusterSpec(n_processors=scale.n_processors, kind="straggler"),
        workload=normal_paper_workload(scale.n_tasks),
        tags=("availability", "heterogeneity"),
    )


def _heavy_tail_mix(scale: ExperimentScale) -> ScenarioSpec:
    total = scale.n_processors
    reserve = 1 if total >= 2 else 0
    base = total - reserve
    workload = uniform_wide_workload(scale.n_tasks)
    horizon = _horizon(scale, workload)
    workload.arrivals = BurstArrivals(n_bursts=4, gap=0.1 * horizon)
    dynamics: List[object] = [
        WorkerFailure(time=0.25 * horizon, proc=0),
        WorkerRecovery(time=0.5 * horizon, proc=0),
        LoadSpike(
            time=0.4 * horizon,
            n_tasks=max(1, scale.n_tasks // 4),
            sizes=UniformSizes(10.0, 1000.0),
        ),
    ]
    if reserve:
        dynamics.append(WorkerJoin(time=0.3 * horizon, proc=base))
    return ScenarioSpec(
        name="heavy-tail-mix",
        description=(
            "1:1000 task sizes arriving in bursts, plus one failure/recovery, "
            "one elastic join and a mid-run spike: the kitchen sink."
        ),
        cluster=ClusterSpec(n_processors=base, reserve_processors=reserve),
        workload=workload,
        dynamics=tuple(dynamics),
        tags=("faults", "elasticity", "load", "heterogeneity"),
    )


def _trace_diurnal(scale: ExperimentScale) -> ScenarioSpec:
    workload = normal_paper_workload(scale.n_tasks)
    horizon = _horizon(scale, workload)
    # Arrivals spread over ~60% of the horizon as two day/night cycles.
    mean_rate = scale.n_tasks / (0.6 * horizon)
    workload.arrivals = diurnal_profile(
        scale.n_tasks, mean_rate=mean_rate, period=0.3 * horizon
    )
    return ScenarioSpec(
        name="trace-diurnal",
        description=(
            "The diurnal trace-generator profile: sinusoidal piecewise-rate "
            "inhomogeneous-Poisson arrivals (two day/night cycles) on the "
            "paper's normal workload."
        ),
        cluster=ClusterSpec(n_processors=scale.n_processors),
        workload=workload,
        tags=("load", "trace"),
    )


def _trace_bursty(scale: ExperimentScale) -> ScenarioSpec:
    workload = normal_paper_workload(scale.n_tasks)
    horizon = _horizon(scale, workload)
    # Calm trickle with 10x bursts over 20% of each cycle; the cycle-mean
    # rate lands the workload inside ~60% of the horizon.
    mean_rate = scale.n_tasks / (0.6 * horizon)
    base_rate = mean_rate / 2.8
    cycle = 0.15 * horizon
    workload.arrivals = bursty_profile(
        scale.n_tasks,
        base_rate=base_rate,
        burst_rate=10.0 * base_rate,
        burst_seconds=0.2 * cycle,
        calm_seconds=0.8 * cycle,
    )
    return ScenarioSpec(
        name="trace-bursty",
        description=(
            "The bursty trace-generator profile: calm/burst piecewise-rate "
            "inhomogeneous-Poisson arrivals (10x rate bursts) on the paper's "
            "normal workload."
        ),
        cluster=ClusterSpec(n_processors=scale.n_processors),
        workload=workload,
        tags=("load", "trace"),
    )


#: Scenario builders keyed by their stable names (insertion order is the
#: presentation order of ``repro scenarios list``).
SCENARIO_BUILDERS: Dict[str, Callable[[ExperimentScale], ScenarioSpec]] = {
    "steady-state": _steady_state,
    "diurnal-load": _diurnal_load,
    "flash-crowd": _flash_crowd,
    "failure-storm": _failure_storm,
    "rolling-restart": _rolling_restart,
    "elastic-scale-out": _elastic_scale_out,
    "straggler-node": _straggler_node,
    "heavy-tail-mix": _heavy_tail_mix,
    "trace-diurnal": _trace_diurnal,
    "trace-bursty": _trace_bursty,
}


def scenario_names() -> List[str]:
    """Names of every scenario in the library, in presentation order."""
    return list(SCENARIO_BUILDERS)


def get_scenario(name: str, scale: Optional[ExperimentScale] = None) -> ScenarioSpec:
    """Build the named scenario at the given scale (default: the default scale)."""
    key = name.strip().lower()
    if key not in SCENARIO_BUILDERS:
        raise ConfigurationError(
            f"unknown scenario {name!r}; expected one of {scenario_names()}"
        )
    return SCENARIO_BUILDERS[key](scale or default_scale())


def make_all_scenarios(scale: Optional[ExperimentScale] = None) -> Dict[str, ScenarioSpec]:
    """Every library scenario at the given scale, keyed by name."""
    scale = scale or default_scale()
    return {name: builder(scale) for name, builder in SCENARIO_BUILDERS.items()}
