"""The end-to-end simulation of a scheduler driving a heterogeneous system.

:func:`simulate_schedule` wires together the master (scheduling policy plus
task queues), one worker per processor, the network model, and the
discrete-event engine, and returns the paper's metrics (makespan and
efficiency) together with the full execution trace.

The dispatch protocol follows Sect. 3 of the paper:

1. arriving tasks join the master's unscheduled FCFS queue;
2. the scheduling policy is invoked to map (batches of) unscheduled tasks
   onto per-processor queues held at the master;
3. an idle worker requests its next task; delivering it costs the link's
   (randomly varying) communication time, after which the worker executes the
   task at its current effective rate and reports completion;
4. when a worker's master-side queue runs dry and unscheduled tasks remain,
   the policy is invoked again — this is what makes batch scheduling
   *dynamic* and lets the PN scheduler exploit the communication-cost and
   rate observations accumulated so far.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


from ..cluster.cluster import Cluster
from ..schedulers.base import Scheduler
from ..util.errors import SimulationError
from ..util.rng import RNGLike, spawn_rngs
from ..workloads.task import Task, TaskSet
from .engine import DiscreteEventEngine
from .events import Event, EventKind
from .master import Master
from .metrics import SimulationMetrics, compute_metrics
from .trace import ExecutionTrace, TaskRecord
from .worker import WorkerState

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "DistributedSystemSimulation",
    "simulate_schedule",
]


@dataclass
class SimulationConfig:
    """Knobs of the simulated environment (not of any particular scheduler)."""

    #: Smoothing factor of the master's communication-cost observations.
    comm_nu: float = 0.5
    #: Smoothing factor of the master's processor-rate observations.
    rate_nu: float = 0.5
    #: Hard cap on processed events (guards against event storms).
    max_events: int = 10_000_000
    #: Optional simulated-time horizon; ``None`` runs to completion.
    time_horizon: Optional[float] = None


@dataclass
class SimulationResult:
    """Everything produced by one simulated schedule."""

    scheduler_name: str
    metrics: SimulationMetrics
    trace: ExecutionTrace
    scheduler_invocations: int
    batch_sizes: List[int]
    n_tasks: int
    n_processors: int

    @property
    def makespan(self) -> float:
        """Total execution time of the schedule (seconds)."""
        return self.metrics.makespan

    @property
    def efficiency(self) -> float:
        """Fraction of processor-time spent executing rather than communicating or idling."""
        return self.metrics.efficiency


class DistributedSystemSimulation:
    """One simulation run: a scheduler, a cluster, and a set of tasks."""

    def __init__(
        self,
        scheduler: Scheduler,
        cluster: Cluster,
        tasks: TaskSet,
        *,
        config: Optional[SimulationConfig] = None,
        rng: RNGLike = None,
    ):
        if len(tasks) == 0:
            raise SimulationError("cannot simulate an empty task set")
        self.scheduler = scheduler
        self.cluster = cluster
        self.tasks = tasks
        self.config = config or SimulationConfig()
        master_rng, network_rng = spawn_rngs(rng, 2)
        self._network_rng = network_rng

        self.engine = DiscreteEventEngine(max_events=self.config.max_events)
        self.master = Master(
            scheduler,
            cluster.n_processors,
            initial_rates=cluster.current_rates(0.0),
            comm_nu=self.config.comm_nu,
            rate_nu=self.config.rate_nu,
            rng=master_rng,
        )
        self.workers = [WorkerState(processor=proc) for proc in cluster.processors]
        self.trace = ExecutionTrace(cluster.n_processors)
        self._completed = 0
        self._scheduler_invocation_pending = False

        self.engine.register(EventKind.TASK_ARRIVAL, self._on_task_arrival)
        self.engine.register(EventKind.INVOKE_SCHEDULER, self._on_invoke_scheduler)
        self.engine.register(EventKind.WORKER_FETCH, self._on_worker_fetch)
        self.engine.register(EventKind.TASK_COMPLETION, self._on_task_completion)

    # -- event handlers ---------------------------------------------------------------
    def _on_task_arrival(self, event: Event) -> None:
        task: Task = event.data["task"]
        self.master.task_arrived(task)
        self._request_scheduling(event.time)

    def _request_scheduling(self, time: float) -> None:
        if not self._scheduler_invocation_pending:
            self._scheduler_invocation_pending = True
            self.engine.schedule(time, EventKind.INVOKE_SCHEDULER)

    def _on_invoke_scheduler(self, event: Event) -> None:
        self._scheduler_invocation_pending = False
        assigned = self.master.schedule_all_available(event.time)
        if assigned == 0:
            return
        # Wake every idle worker whose queue now has work.
        for worker in self.workers:
            if not worker.is_busy and self.master.queue_length(worker.proc_id) > 0:
                self.engine.schedule(event.time, EventKind.WORKER_FETCH, proc=worker.proc_id)

    def _on_worker_fetch(self, event: Event) -> None:
        proc = int(event.data["proc"])
        worker = self.workers[proc]
        if worker.is_busy:
            return  # stale wake-up: the worker already fetched something
        task = self.master.pop_task_for(proc)
        if task is None:
            # Queue ran dry: ask for more work if any remains unscheduled.
            if self.master.has_unscheduled():
                self._request_scheduling(event.time)
            return
        comm_cost = self.cluster.network.sample_cost(proc, self._network_rng, time=event.time)
        completion_time = worker.start_task(task, event.time, comm_cost)
        self.master.observe_dispatch(proc, comm_cost, event.time)
        self.engine.schedule(
            completion_time,
            EventKind.TASK_COMPLETION,
            proc=proc,
            task=task,
            dispatch_time=event.time,
            comm_cost=comm_cost,
        )

    def _on_task_completion(self, event: Event) -> None:
        proc = int(event.data["proc"])
        task: Task = event.data["task"]
        dispatch_time: float = event.data["dispatch_time"]
        comm_cost: float = event.data["comm_cost"]
        worker = self.workers[proc]
        worker.finish_task(event.time)

        exec_start = dispatch_time + comm_cost
        exec_seconds = event.time - exec_start
        worker.record_execution(exec_seconds)
        self.master.observe_completion(proc, task, exec_seconds, event.time)
        self.trace.add(
            TaskRecord(
                task_id=task.task_id,
                proc_id=proc,
                size_mflops=task.size_mflops,
                arrival_time=task.arrival_time,
                assigned_time=self.master.assigned_time_of(task.task_id),
                dispatch_time=dispatch_time,
                exec_start=exec_start,
                exec_end=event.time,
            )
        )
        self._completed += 1
        # Fetch the next task (or trigger another scheduling round).
        self.engine.schedule(event.time, EventKind.WORKER_FETCH, proc=proc)

    # -- run -------------------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation to completion and return metrics plus trace."""
        self.scheduler.reset()
        for task in self.tasks:
            self.engine.schedule(task.arrival_time, EventKind.TASK_ARRIVAL, task=task)
        self.engine.run(until=self.config.time_horizon)

        if self.config.time_horizon is None and self._completed != len(self.tasks):
            raise SimulationError(
                f"simulation finished with {self._completed}/{len(self.tasks)} tasks completed"
            )
        metrics = compute_metrics(self.trace)
        return SimulationResult(
            scheduler_name=self.scheduler.name,
            metrics=metrics,
            trace=self.trace,
            scheduler_invocations=self.master.invocations,
            batch_sizes=list(self.master.batch_sizes),
            n_tasks=len(self.tasks),
            n_processors=self.cluster.n_processors,
        )


def simulate_schedule(
    scheduler: Scheduler,
    cluster: Cluster,
    tasks: TaskSet,
    *,
    config: Optional[SimulationConfig] = None,
    rng: RNGLike = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`DistributedSystemSimulation` and run it."""
    simulation = DistributedSystemSimulation(scheduler, cluster, tasks, config=config, rng=rng)
    return simulation.run()
