"""Tests for RNG normalisation and child-stream derivation."""

import numpy as np
import pytest

from repro.util.rng import derive_rng, ensure_rng, random_seed, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9)
        b = ensure_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(7)), np.random.Generator)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_returns_requested_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5
        assert all(isinstance(c, np.random.Generator) for c in children)

    def test_children_are_independent(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_deterministic_for_seeded_parent(self):
        first = [g.integers(0, 10**9) for g in spawn_rngs(123, 3)]
        second = [g.integers(0, 10**9) for g in spawn_rngs(123, 3)]
        assert first == second

    def test_zero_children_allowed(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestDeriveRng:
    def test_same_keys_same_stream(self):
        a = derive_rng(7, "link", 3).integers(0, 10**9)
        b = derive_rng(7, "link", 3).integers(0, 10**9)
        assert a == b

    def test_different_keys_different_stream(self):
        a = derive_rng(7, "link", 3).integers(0, 10**9)
        b = derive_rng(7, "link", 4).integers(0, 10**9)
        assert a != b

    def test_string_and_int_keys_supported(self):
        assert isinstance(derive_rng(1, "availability", 0), np.random.Generator)

    def test_invalid_key_type_rejected(self):
        with pytest.raises(TypeError):
            derive_rng(1, 3.14)


class TestRandomSeed:
    def test_within_int32_range(self):
        for _ in range(10):
            seed = random_seed(0)
            assert 0 <= seed < 2**31

    def test_deterministic_given_seeded_source(self):
        assert random_seed(5) == random_seed(5)
