"""Persistence helpers: save and load experiment results as JSON/CSV."""

from .results import (
    comparison_to_csv,
    figure_from_dict,
    figure_to_csv,
    figure_to_dict,
    load_figure_json,
    save_all_figures,
    save_figure_json,
)

__all__ = [
    "figure_to_dict",
    "figure_from_dict",
    "save_figure_json",
    "load_figure_json",
    "figure_to_csv",
    "comparison_to_csv",
    "save_all_figures",
]
