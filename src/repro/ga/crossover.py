"""Permutation crossover operators.

The paper uses the **cycle crossover** of Oliver, Smith & Holland (Sect. 3.3),
which preserves the absolute position of symbols: each position of a child
takes its symbol from one of the two parents, and the set of positions taken
from each parent is a union of "cycles" so the child remains a permutation.
PMX and order crossover (OX) are provided as ablation alternatives.

All operators act on chromosomes in the library's encoding: permutations of
the batch task indices plus the distinct negative delimiter symbols (see
:mod:`repro.ga.encoding`).  Because every symbol is distinct, the classic
permutation operators apply unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Tuple

import numpy as np

from ..util.errors import ConfigurationError, EncodingError
from ..util.rng import RNGLike, ensure_rng

__all__ = [
    "CrossoverOperator",
    "CycleCrossover",
    "PartiallyMappedCrossover",
    "OrderCrossover",
    "crossover_from_name",
    "find_cycles",
]


def _check_parents(parent_a: np.ndarray, parent_b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    a = np.asarray(parent_a, dtype=int)
    b = np.asarray(parent_b, dtype=int)
    if a.shape != b.shape or a.ndim != 1:
        raise EncodingError("parents must be 1-D arrays of equal length")
    if not np.array_equal(np.sort(a), np.sort(b)):
        raise EncodingError("parents must be permutations of the same symbol set")
    if len(np.unique(a)) != a.size:
        raise EncodingError("parents must not contain repeated symbols")
    return a, b


def find_cycles(parent_a: np.ndarray, parent_b: np.ndarray) -> List[List[int]]:
    """Return the index cycles of the pair (used by cycle crossover).

    Starting from an unvisited position ``i``, the cycle is built by repeatedly
    jumping to the position in ``parent_a`` holding the symbol found at the
    current position of ``parent_b``, until the walk returns to ``i``.
    """
    a, b = _check_parents(parent_a, parent_b)
    position_of: Dict[int, int] = {int(symbol): idx for idx, symbol in enumerate(a)}
    visited = np.zeros(a.size, dtype=bool)
    cycles: List[List[int]] = []
    for start in range(a.size):
        if visited[start]:
            continue
        cycle = []
        current = start
        while not visited[current]:
            visited[current] = True
            cycle.append(current)
            current = position_of[int(b[current])]
        cycles.append(cycle)
    return cycles


class CrossoverOperator(ABC):
    """Base class: combine two parent chromosomes into two children."""

    name: str = "crossover"
    #: True when :meth:`cross` makes no random draws of its own (its output is
    #: fully determined by the parents), which makes the operator bit-identical
    #: across the kernel backends for a fixed seed.  Operators that draw (PMX,
    #: OX) are applied pair by pair in ascending pair order by every backend —
    #: the RNG draw-order contract of :mod:`repro.ga.kernels`.
    deterministic_given_draws: bool = False

    @abstractmethod
    def cross(
        self, parent_a: np.ndarray, parent_b: np.ndarray, rng: RNGLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return two child chromosomes."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class CycleCrossover(CrossoverOperator):
    """Cycle crossover (CX) — the paper's operator.

    Cycles are assigned alternately to the two children: child 1 copies the
    even-numbered cycles from parent A and the odd-numbered cycles from
    parent B (child 2 the reverse), so every position keeps a symbol that one
    of its parents had at that same position.
    """

    name = "cycle"
    deterministic_given_draws = True

    def cross(
        self, parent_a: np.ndarray, parent_b: np.ndarray, rng: RNGLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        a, b = _check_parents(parent_a, parent_b)
        child_a = a.copy()
        child_b = b.copy()
        for k, cycle in enumerate(find_cycles(a, b)):
            if k % 2 == 1:  # odd cycles swap parental material
                idx = np.asarray(cycle, dtype=int)
                child_a[idx] = b[idx]
                child_b[idx] = a[idx]
        return child_a, child_b


class PartiallyMappedCrossover(CrossoverOperator):
    """PMX — ablation alternative preserving a contiguous segment of one parent."""

    name = "pmx"

    def _pmx_child(
        self, donor: np.ndarray, other: np.ndarray, lo: int, hi: int
    ) -> np.ndarray:
        child = np.full(donor.size, None, dtype=object)
        child[lo:hi] = donor[lo:hi]
        placed = set(int(x) for x in donor[lo:hi])
        mapping = {int(donor[i]): int(other[i]) for i in range(lo, hi)}
        for i in list(range(0, lo)) + list(range(hi, donor.size)):
            candidate = int(other[i])
            guard = 0
            while candidate in placed:
                candidate = mapping[candidate]
                guard += 1
                if guard > donor.size:
                    raise EncodingError("PMX mapping failed to resolve (corrupt parents)")
            child[i] = candidate
            placed.add(candidate)
        return child.astype(int)

    def cross(
        self, parent_a: np.ndarray, parent_b: np.ndarray, rng: RNGLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        a, b = _check_parents(parent_a, parent_b)
        gen = ensure_rng(rng)
        if a.size < 2:
            return a.copy(), b.copy()
        lo, hi = sorted(gen.choice(a.size + 1, size=2, replace=False).tolist())
        if lo == hi:
            return a.copy(), b.copy()
        return self._pmx_child(a, b, lo, hi), self._pmx_child(b, a, lo, hi)


class OrderCrossover(CrossoverOperator):
    """Order crossover (OX1) — ablation alternative preserving relative order."""

    name = "order"

    def _ox_child(self, donor: np.ndarray, other: np.ndarray, lo: int, hi: int) -> np.ndarray:
        child = np.full(donor.size, 0, dtype=int)
        child[lo:hi] = donor[lo:hi]
        used = set(int(x) for x in donor[lo:hi])
        fill = [int(x) for x in np.concatenate([other[hi:], other[:hi]]) if int(x) not in used]
        positions = list(range(hi, donor.size)) + list(range(0, lo))
        for pos, value in zip(positions, fill):
            child[pos] = value
        return child

    def cross(
        self, parent_a: np.ndarray, parent_b: np.ndarray, rng: RNGLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        a, b = _check_parents(parent_a, parent_b)
        gen = ensure_rng(rng)
        if a.size < 2:
            return a.copy(), b.copy()
        lo, hi = sorted(gen.choice(a.size + 1, size=2, replace=False).tolist())
        if lo == hi:
            return a.copy(), b.copy()
        return self._ox_child(a, b, lo, hi), self._ox_child(b, a, lo, hi)


def crossover_from_name(name: str, **kwargs) -> CrossoverOperator:
    """Construct a crossover operator by name (``cycle``, ``pmx``, ``order``)."""
    registry = {
        "cycle": CycleCrossover,
        "cx": CycleCrossover,
        "pmx": PartiallyMappedCrossover,
        "order": OrderCrossover,
        "ox": OrderCrossover,
    }
    key = name.strip().lower()
    if key not in registry:
        raise ConfigurationError(
            f"unknown crossover operator {name!r}; expected one of {sorted(set(registry))}"
        )
    return registry[key](**kwargs)
