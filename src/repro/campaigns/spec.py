"""Declarative campaign specifications.

A :class:`CampaignSpec` names everything one durable experimental campaign
covers — a set of the paper's figures, a scenario matrix, GA parameter
sweeps — plus the scale, master seed and backend choices, all as plain JSON
data.  Campaign *cells* (one figure, one scenario-matrix cell, one GA run)
are expanded from the spec deterministically, so the same spec always
produces the same cell list with the same content-addressed cache keys: a
re-run (or a resume after an interruption) recomputes only the cells whose
results are not yet in the store.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

from ..experiments.config import ExperimentScale, SCALES, get_scale
from ..experiments.figures import FIGURES
from ..ga.kernels import BACKEND_NAMES
from ..scenarios.registry import scenario_names
from ..schedulers.kernels import POLICY_BACKEND_NAMES
from ..schedulers.registry import ALL_SCHEDULER_NAMES
from ..sim.simulation import SIM_BACKENDS
from ..util.errors import ConfigurationError

__all__ = ["SweepSpec", "CampaignSpec"]

#: Scalar types admissible as swept values (must survive a JSON round trip).
_SCALAR_TYPES = (bool, int, float, str)


@dataclass(frozen=True)
class SweepSpec:
    """One GA parameter sweep inside a campaign.

    ``values`` are the swept :class:`~repro.ga.engine.GAConfig` field values
    (JSON scalars); ``repeats`` overrides the scale's repeat count for this
    sweep only.
    """

    parameter: str
    values: Tuple[object, ...]
    repeats: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.parameter or not str(self.parameter).strip():
            raise ConfigurationError("sweep parameter must be non-empty")
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ConfigurationError(
                f"sweep of {self.parameter!r} needs at least one value"
            )
        for value in self.values:
            if not isinstance(value, _SCALAR_TYPES):
                raise ConfigurationError(
                    f"sweep value {value!r} is not a JSON scalar"
                )
        if len(set(self.values)) != len(self.values):
            raise ConfigurationError(
                f"duplicate values in sweep of {self.parameter!r}: {list(self.values)}"
            )
        if self.repeats is not None and int(self.repeats) <= 0:
            raise ConfigurationError(f"repeats must be positive, got {self.repeats}")


@dataclass(frozen=True)
class CampaignSpec:
    """Everything one campaign runs, as plain JSON-serialisable data.

    Attributes
    ----------
    name:
        Campaign identifier; the manifest persists under this name inside
        the result store.
    scale:
        Name of the :class:`~repro.experiments.config.ExperimentScale`
        preset sizing every unit (``smoke`` … ``paper``).
    seed:
        Master seed.  Figure units receive it directly (matching ``repro
        fig5 --seed N``); scenario cells draw their per-cell entropy from it
        in matrix order (matching ``repro scenarios run --seed N``); sweeps
        derive their problems and GA seeds from it.
    figures:
        Figure ids to reproduce (``"fig3"`` … ``"fig11"``).
    scenarios:
        Scenario library names forming one (scenario × scheduler × repeat)
        matrix.
    schedulers:
        Optional scheduler subset for the scenario matrix (default: each
        scenario's own set).
    repeats:
        Optional repeat override for the scenario matrix.
    sweeps:
        GA parameter sweeps.
    ga_backend, sim_backend, policy_backend:
        Optional backend overrides applied to the scale.  Part of every
        cell's cache key: results from different backends are stored — and
        proven bit-identical — separately.  Exception: the ``batch`` sim
        backend canonicalises to ``fast`` in cache keys (it is bit-identical
        per cell and only regroups repeats into executor jobs), so campaigns
        resume warm across that switch.
    """

    name: str
    scale: str = "small"
    seed: int = 42
    figures: Tuple[str, ...] = ()
    scenarios: Tuple[str, ...] = ()
    schedulers: Optional[Tuple[str, ...]] = None
    repeats: Optional[int] = None
    sweeps: Tuple[SweepSpec, ...] = field(default_factory=tuple)
    ga_backend: Optional[str] = None
    sim_backend: Optional[str] = None
    policy_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise ConfigurationError("campaign name must be non-empty")
        if self.scale not in SCALES:
            raise ConfigurationError(
                f"unknown scale {self.scale!r}; expected one of {sorted(SCALES)}"
            )
        object.__setattr__(self, "figures", tuple(self.figures))
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "sweeps", tuple(self.sweeps))
        if self.schedulers is not None:
            object.__setattr__(self, "schedulers", tuple(self.schedulers))
        if not (self.figures or self.scenarios or self.sweeps):
            raise ConfigurationError(
                f"campaign {self.name!r} is empty: give it figures, scenarios "
                "and/or sweeps"
            )
        unknown_figures = [f for f in self.figures if f not in FIGURES]
        if unknown_figures:
            raise ConfigurationError(
                f"unknown figures {unknown_figures}; expected among {list(FIGURES)}"
            )
        if len(set(self.figures)) != len(self.figures):
            raise ConfigurationError(f"duplicate figures: {list(self.figures)}")
        known_scenarios = set(scenario_names())
        unknown_scenarios = [s for s in self.scenarios if s not in known_scenarios]
        if unknown_scenarios:
            raise ConfigurationError(
                f"unknown scenarios {unknown_scenarios}; "
                f"expected among {scenario_names()}"
            )
        if len(set(self.scenarios)) != len(self.scenarios):
            raise ConfigurationError(f"duplicate scenarios: {list(self.scenarios)}")
        if self.schedulers is not None:
            bad = [s for s in self.schedulers if s.upper() not in ALL_SCHEDULER_NAMES]
            if bad:
                raise ConfigurationError(f"unknown schedulers: {bad}")
        if self.repeats is not None and int(self.repeats) <= 0:
            raise ConfigurationError(f"repeats must be positive, got {self.repeats}")
        parameters = [sweep.parameter for sweep in self.sweeps]
        if len(set(parameters)) != len(parameters):
            raise ConfigurationError(f"duplicate sweep parameters: {parameters}")
        if self.ga_backend is not None and self.ga_backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"unknown ga_backend {self.ga_backend!r}; "
                f"expected one of {sorted(BACKEND_NAMES)}"
            )
        if self.sim_backend is not None and self.sim_backend not in SIM_BACKENDS:
            raise ConfigurationError(
                f"unknown sim_backend {self.sim_backend!r}; "
                f"expected one of {list(SIM_BACKENDS)}"
            )
        if (
            self.policy_backend is not None
            and self.policy_backend not in POLICY_BACKEND_NAMES
        ):
            raise ConfigurationError(
                f"unknown policy_backend {self.policy_backend!r}; "
                f"expected one of {list(POLICY_BACKEND_NAMES)}"
            )

    def experiment_scale(self) -> ExperimentScale:
        """The scale preset with the campaign's backend overrides applied."""
        scale = get_scale(self.scale)
        overrides = {}
        if self.ga_backend is not None:
            overrides["ga_backend"] = self.ga_backend
        if self.sim_backend is not None:
            overrides["sim_backend"] = self.sim_backend
        if self.policy_backend is not None:
            overrides["policy_backend"] = self.policy_backend
        return scale.scaled(**overrides) if overrides else scale

    def to_dict(self) -> Dict:
        """JSON-ready form, persisted in the campaign manifest."""
        payload = asdict(self)
        payload["figures"] = list(self.figures)
        payload["scenarios"] = list(self.scenarios)
        payload["schedulers"] = (
            list(self.schedulers) if self.schedulers is not None else None
        )
        payload["sweeps"] = [
            {
                "parameter": sweep.parameter,
                "values": list(sweep.values),
                "repeats": sweep.repeats,
            }
            for sweep in self.sweeps
        ]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output (manifest resume)."""
        sweeps = tuple(
            SweepSpec(
                parameter=entry["parameter"],
                values=tuple(entry["values"]),
                repeats=entry.get("repeats"),
            )
            for entry in payload.get("sweeps", ())
        )
        schedulers = payload.get("schedulers")
        return cls(
            name=payload["name"],
            scale=payload.get("scale", "small"),
            seed=int(payload.get("seed", 42)),
            figures=tuple(payload.get("figures", ())),
            scenarios=tuple(payload.get("scenarios", ())),
            schedulers=tuple(schedulers) if schedulers is not None else None,
            repeats=payload.get("repeats"),
            sweeps=sweeps,
            ga_backend=payload.get("ga_backend"),
            sim_backend=payload.get("sim_backend"),
            policy_backend=payload.get("policy_backend"),
        )
