"""Minimal discrete-event engine: a time-ordered event queue and a run loop."""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional

from ..util.errors import SimulationError
from .events import Event, EventKind

__all__ = ["EventQueue", "DiscreteEventEngine"]


class EventQueue:
    """A priority queue of :class:`Event` objects ordered by time then insertion."""

    def __init__(self) -> None:
        self._heap: List[Event] = []

    def push(self, event: Event) -> None:
        """Insert an event."""
        heapq.heappush(self._heap, event)

    def pop(self) -> Event:
        """Remove and return the earliest event (raises when empty)."""
        if not self._heap:
            raise SimulationError("cannot pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Return the earliest event without removing it (raises when empty)."""
        if not self._heap:
            raise SimulationError("cannot peek into an empty event queue")
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class DiscreteEventEngine:
    """Run loop: pops events in time order and dispatches them to handlers.

    Handlers are registered per :class:`EventKind`; each handler receives the
    event and may push follow-up events through :meth:`schedule`.  The engine
    enforces that time never goes backwards and guards against runaway event
    storms with a configurable event budget.
    """

    def __init__(self, max_events: int = 10_000_000) -> None:
        if max_events <= 0:
            raise SimulationError(f"max_events must be positive, got {max_events}")
        self.queue = EventQueue()
        self.now = 0.0
        self.processed_events = 0
        self.max_events = int(max_events)
        self._handlers: Dict[EventKind, Callable[[Event], None]] = {}

    def register(self, kind: EventKind, handler: Callable[[Event], None]) -> None:
        """Register the handler invoked for every event of *kind*."""
        self._handlers[kind] = handler

    def schedule(self, time: float, kind: EventKind, **data) -> Event:
        """Create an event at *time* and insert it into the queue."""
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule an event at t={time} before the current time {self.now}"
            )
        event = Event.make(max(time, self.now), kind, **data)
        self.queue.push(event)
        return event

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue empties (or simulated *until* is reached).

        Returns the simulation time of the last processed event.
        """
        while self.queue:
            if until is not None and self.queue.peek().time > until:
                break
            event = self.queue.pop()
            if event.time < self.now - 1e-9:
                raise SimulationError(
                    f"event at t={event.time} is earlier than current time {self.now}"
                )
            self.now = max(self.now, event.time)
            handler = self._handlers.get(event.kind)
            if handler is None:
                raise SimulationError(f"no handler registered for event kind {event.kind}")
            handler(event)
            self.processed_events += 1
            if self.processed_events > self.max_events:
                raise SimulationError(
                    f"event budget of {self.max_events} exceeded; "
                    "the simulation is likely stuck in an event loop"
                )
        return self.now
