#!/usr/bin/env python3
"""Dynamic arrivals: tasks streaming in over time and adaptive batch sizing.

The paper's scheduler is *dynamic*: it does not need the whole task set up
front.  This example drives the PN scheduler with a Poisson arrival stream
(tasks trickling in throughout the run), shows how the dynamic batch-size
rule ``H = floor(sqrt(Γ_s + 1))`` adapts as queues fill up, and compares the
outcome against an immediate-mode baseline that maps each task the moment it
arrives.

Run with::

    python examples/dynamic_arrival_scheduling.py [--tasks 400] [--rate 5.0]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    PNScheduler,
    default_pn_ga_config,
    heterogeneous_cluster,
    make_scheduler,
    simulate_schedule,
)
from repro.core import DynamicBatchSizer
from repro.util.tables import format_key_values, format_table
from repro.workloads import NormalSizes, PoissonArrivals, WorkloadSpec, generate_workload


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=400, help="number of arriving tasks")
    parser.add_argument("--rate", type=float, default=5.0, help="task arrival rate (tasks/s)")
    parser.add_argument("--processors", type=int, default=10)
    parser.add_argument("--comm-cost", type=float, default=1.0)
    parser.add_argument("--generations", type=int, default=40)
    parser.add_argument("--seed", type=int, default=11)
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    cluster = heterogeneous_cluster(
        args.processors, mean_comm_cost=args.comm_cost, rng=args.seed
    )
    spec = WorkloadSpec(
        n_tasks=args.tasks,
        sizes=NormalSizes(1000.0, 9.0e5),
        arrivals=PoissonArrivals(rate_per_second=args.rate),
    )
    tasks = generate_workload(spec, rng=args.seed + 1)
    arrivals = tasks.arrival_times()
    print(
        format_key_values(
            {
                "tasks": len(tasks),
                "arrival window (s)": float(arrivals.max() - arrivals.min()),
                "mean task size (MFLOPs)": tasks.mean_mflops(),
                "cluster peak rate (Mflop/s)": cluster.total_peak_rate(),
                "mean comm cost (s/task)": cluster.mean_comm_cost(),
            },
            title="Scenario:",
        )
    )
    print()

    # The paper's scheduler with its dynamic batch-size rule.
    pn = PNScheduler(
        n_processors=args.processors,
        ga_config=default_pn_ga_config(max_generations=args.generations),
        batch_sizer=DynamicBatchSizer(min_batch=5, max_batch=200, initial_batch=50),
        rng=args.seed + 2,
    )
    pn_result = simulate_schedule(pn, cluster, tasks, rng=args.seed + 3)

    # An immediate-mode baseline: every task mapped the moment it arrives.
    ef = make_scheduler("EF", n_processors=args.processors)
    ef_result = simulate_schedule(ef, cluster, tasks, rng=args.seed + 3)

    print(
        format_table(
            ["scheduler", "makespan_s", "efficiency", "mean_queue_wait_s", "batches"],
            [
                [
                    "PN",
                    pn_result.makespan,
                    pn_result.efficiency,
                    pn_result.metrics.mean_queue_wait,
                    pn_result.scheduler_invocations,
                ],
                [
                    "EF",
                    ef_result.makespan,
                    ef_result.efficiency,
                    ef_result.metrics.mean_queue_wait,
                    ef_result.scheduler_invocations,
                ],
            ],
            title="Streaming arrivals: batch GA scheduling vs immediate mapping",
        )
    )

    sizes = np.asarray(pn_result.batch_sizes)
    print("\nPN batch sizes over the run (the dynamic rule adapts to queue depth):")
    print(f"  first 10 batches : {sizes[:10].tolist()}")
    print(f"  min / median / max: {sizes.min()} / {int(np.median(sizes))} / {sizes.max()}")
    print(
        "\nCommunication-cost estimates learned by PN per link (Γ-smoothed history):\n"
        f"  {np.round(pn.comm_estimator.estimates(), 2).tolist()}"
    )


if __name__ == "__main__":
    main()
