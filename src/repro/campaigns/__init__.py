"""Campaign orchestration: durable, deduplicated, resumable experiment runs.

Three layers:

* :mod:`repro.campaigns.store` — a content-addressed result store.  Each
  leaf job spec (scheduler, cluster, workload, seed entropy, backends, code
  contract version) hashes to a stable cache key; results persist as JSON
  (plus optional ``.npz``) records, so re-running any figure, sweep or
  scenario matrix skips every cell already computed — bit-identically.
* :mod:`repro.campaigns.spec` — declarative :class:`CampaignSpec` composing
  figures, scenario matrices and GA sweeps into one unit.
* :mod:`repro.campaigns.runner` — the resumable runner: cells stream
  through any :mod:`repro.parallel` executor, every completed cell is
  persisted and the manifest checkpointed, and aggregates are folded from
  the store in cell order so interrupted-then-resumed runs are
  bit-identical to uninterrupted ones.

CLI: ``repro campaigns run | status | resume``.
"""

from .runner import (
    CampaignCell,
    CampaignPlan,
    CampaignResult,
    expand_campaign,
    load_manifest,
    run_campaign,
    run_campaign_cell,
)
from .spec import CampaignSpec, SweepSpec
from .store import CODE_CONTRACT_VERSION, ResultStore, cache_key, fingerprint

__all__ = [
    "CODE_CONTRACT_VERSION",
    "CampaignCell",
    "CampaignPlan",
    "CampaignResult",
    "CampaignSpec",
    "ResultStore",
    "SweepSpec",
    "cache_key",
    "expand_campaign",
    "fingerprint",
    "load_manifest",
    "run_campaign",
    "run_campaign_cell",
]
