"""Canned workload specifications matching the paper's experiments.

Each helper returns a :class:`~repro.workloads.generator.WorkloadSpec`
parameterised exactly as described in Sect. 4 of the paper; the task count is
left as an argument so benches can run scaled-down versions of the same
workload shape.
"""

from __future__ import annotations

from typing import Dict

from ..util.errors import ConfigurationError
from .arrival import AllAtOnce
from .distributions import NormalSizes, PoissonSizes, UniformSizes
from .generator import WorkloadSpec

__all__ = [
    "normal_paper_workload",
    "uniform_narrow_workload",
    "uniform_standard_workload",
    "uniform_wide_workload",
    "poisson_small_workload",
    "poisson_large_workload",
    "paper_workloads",
    "workload_by_name",
]

#: Paper figure 5/6 normal distribution parameters.
NORMAL_MEAN_MFLOPS = 1000.0
NORMAL_VARIANCE_MFLOPS2 = 9.0e5

#: Paper figure 8 uniform range (1:10 ratio).
UNIFORM_NARROW_RANGE = (10.0, 100.0)
#: Paper figure 7 uniform range.
UNIFORM_STANDARD_RANGE = (10.0, 1000.0)
#: Paper figure 9 uniform range (1:1000 ratio).
UNIFORM_WIDE_RANGE = (10.0, 10000.0)

#: Paper figure 10/11 Poisson means.
POISSON_SMALL_MEAN = 10.0
POISSON_LARGE_MEAN = 100.0


def normal_paper_workload(n_tasks: int) -> WorkloadSpec:
    """Normal(1000, 9e5) task sizes, all arriving at time zero (Figs. 5, 6)."""
    return WorkloadSpec(
        n_tasks=n_tasks,
        sizes=NormalSizes(NORMAL_MEAN_MFLOPS, NORMAL_VARIANCE_MFLOPS2),
        arrivals=AllAtOnce(),
    )


def uniform_narrow_workload(n_tasks: int) -> WorkloadSpec:
    """Uniform[10, 100] task sizes (1:10 ratio, Fig. 8)."""
    return WorkloadSpec(
        n_tasks=n_tasks,
        sizes=UniformSizes(*UNIFORM_NARROW_RANGE),
        arrivals=AllAtOnce(),
    )


def uniform_standard_workload(n_tasks: int) -> WorkloadSpec:
    """Uniform[10, 1000] task sizes (Fig. 7)."""
    return WorkloadSpec(
        n_tasks=n_tasks,
        sizes=UniformSizes(*UNIFORM_STANDARD_RANGE),
        arrivals=AllAtOnce(),
    )


def uniform_wide_workload(n_tasks: int) -> WorkloadSpec:
    """Uniform[10, 10000] task sizes (1:1000 ratio, Fig. 9)."""
    return WorkloadSpec(
        n_tasks=n_tasks,
        sizes=UniformSizes(*UNIFORM_WIDE_RANGE),
        arrivals=AllAtOnce(),
    )


def poisson_small_workload(n_tasks: int) -> WorkloadSpec:
    """Poisson(mean 10 MFLOPs) task sizes (Fig. 10)."""
    return WorkloadSpec(
        n_tasks=n_tasks,
        sizes=PoissonSizes(POISSON_SMALL_MEAN),
        arrivals=AllAtOnce(),
    )


def poisson_large_workload(n_tasks: int) -> WorkloadSpec:
    """Poisson(mean 100 MFLOPs) task sizes (Fig. 11)."""
    return WorkloadSpec(
        n_tasks=n_tasks,
        sizes=PoissonSizes(POISSON_LARGE_MEAN),
        arrivals=AllAtOnce(),
    )


def paper_workloads(n_tasks: int) -> Dict[str, WorkloadSpec]:
    """All workload shapes used in the paper's figures, keyed by short name."""
    return {
        "normal": normal_paper_workload(n_tasks),
        "uniform_narrow": uniform_narrow_workload(n_tasks),
        "uniform_standard": uniform_standard_workload(n_tasks),
        "uniform_wide": uniform_wide_workload(n_tasks),
        "poisson_small": poisson_small_workload(n_tasks),
        "poisson_large": poisson_large_workload(n_tasks),
    }


def workload_by_name(name: str, n_tasks: int):
    """Look up a paper workload by its short name.

    ``trace:<path>`` selects a replayed trace workload instead (see
    :mod:`repro.workloads.traces`); its task count comes from the trace
    file, so *n_tasks* is ignored for traces.
    """
    key = name.strip()
    if key.lower().startswith("trace:"):
        from .traces import TraceSpec

        path = key.split(":", 1)[1]
        if not path:
            raise ConfigurationError("trace workload needs a path: trace:<path>")
        return TraceSpec.from_file(path)
    table = paper_workloads(n_tasks)
    key = key.lower()
    if key not in table:
        raise ConfigurationError(
            f"unknown paper workload {name!r}; expected one of "
            f"{sorted(table)} or trace:<path>"
        )
    return table[key]
