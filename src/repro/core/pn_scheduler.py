"""PN: the paper's dynamic GA scheduler for heterogeneous distributed systems.

The :class:`PNScheduler` assembles every ingredient described in Sect. 3 of
the paper:

* batches of queued tasks are mapped onto per-processor queues by a genetic
  algorithm (micro-GA population of 20, roulette-wheel selection, cycle
  crossover, random swap mutation) whose fitness is the relative error
  against the theoretical optimum ψ;
* the GA's initial population is seeded with the list-scheduling heuristic;
* a re-balancing heuristic is applied to every individual in every
  generation (a single re-balance by default, as chosen in Sect. 3.5);
* per-link communication costs are *predicted* from Γ-smoothed historical
  observations and included in the fitness function;
* the batch size adapts dynamically to the estimated time until the first
  processor becomes idle (``H = floor(sqrt(Γ_s + 1))``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..ga.engine import GAConfig, GAResult, GeneticAlgorithm
from ..ga.problem import BatchProblem
from ..schedulers.base import BatchScheduler, ScheduleAssignment, SchedulingContext
from ..util.errors import ConfigurationError
from ..util.rng import RNGLike, ensure_rng
from ..util.smoothing import SmoothedMap
from ..util.validation import require_probability
from ..workloads.task import Task
from .batching import DynamicBatchSizer, FixedBatchSizer
from .comm_estimator import CommCostEstimator

__all__ = ["PNScheduler", "default_pn_ga_config"]


def default_pn_ga_config(max_generations: int = 1000) -> GAConfig:
    """GA parameters used by the PN scheduler (paper defaults).

    Population of 20 (micro-GA), at most 1000 generations, one re-balance per
    individual per generation with at most five probes, list-scheduling
    seeded initial population.
    """
    return GAConfig(
        population_size=20,
        max_generations=max_generations,
        crossover_rate=0.8,
        mutation_rate=0.4,
        n_rebalances=1,
        rebalance_probes=5,
        seeded_initialisation=True,
        random_init_fraction=0.5,
        elitism=1,
        selection="roulette",
        crossover="cycle",
    )


class PNScheduler(BatchScheduler):
    """The paper's dynamic GA scheduler (labelled **PN** in its figures).

    Parameters
    ----------
    n_processors:
        Number of processors in the system; needed up front so that the
        communication estimator and rate smoother can be sized before the
        first scheduling call.
    ga_config:
        GA parameters; defaults to :func:`default_pn_ga_config`.
    batch_sizer:
        Batch-size policy.  Defaults to the paper's dynamic rule
        (:class:`~repro.core.batching.DynamicBatchSizer`); pass a
        :class:`~repro.core.batching.FixedBatchSizer` to reproduce the fixed
        batch-size experiments.
    comm_nu, rate_nu:
        Smoothing factors of the communication-cost and processor-rate
        estimators (the paper's Γ function, Sect. 3.6).
    rng:
        Randomness source for the GA.
    """

    name = "PN"

    def __init__(
        self,
        n_processors: int,
        *,
        ga_config: Optional[GAConfig] = None,
        batch_sizer: Optional[Union[DynamicBatchSizer, FixedBatchSizer]] = None,
        comm_nu: float = 0.5,
        rate_nu: float = 0.5,
        rng: RNGLike = None,
    ):
        super().__init__(batch_size=None)
        if n_processors <= 0:
            raise ConfigurationError(f"n_processors must be positive, got {n_processors}")
        self.n_processors = int(n_processors)
        self.ga_config = ga_config or default_pn_ga_config()
        self.batch_sizer = batch_sizer or DynamicBatchSizer(
            min_batch=10, max_batch=500, initial_batch=200
        )
        require_probability(comm_nu, "comm_nu")
        require_probability(rate_nu, "rate_nu")
        self.comm_estimator = CommCostEstimator(self.n_processors, nu=comm_nu)
        self._rate_estimates = SmoothedMap(nu=rate_nu)
        self._rng = ensure_rng(rng)
        #: GA results of every batch scheduled so far (most recent last).
        self.history: List[GAResult] = []

    # -- batch sizing -------------------------------------------------------------------
    def preferred_batch_size(self, ctx: SchedulingContext, n_queued: int) -> int:
        """The paper's dynamic batch size, capped by the number of queued tasks."""
        if n_queued <= 0:
            return 0
        # Estimate the time until the first processor becomes idle from the
        # context and fold it into the Γ estimate driving the batch size.
        self.batch_sizer.observe_queue_state(ctx.pending_loads, self._effective_rates(ctx))
        return max(1, self.batch_sizer.next_batch_size(n_queued))

    # -- estimates ----------------------------------------------------------------------
    def _effective_rates(self, ctx: SchedulingContext) -> np.ndarray:
        """Processor rates used by the GA: smoothed observations, else the context's."""
        rates = np.array(
            [
                self._rate_estimates.get(p, default=float(ctx.rates[p]))
                for p in range(self.n_processors)
            ],
            dtype=float,
        )
        return np.maximum(rates, 1e-9)

    def _effective_comm_costs(self, ctx: SchedulingContext) -> np.ndarray:
        """Per-link communication estimates: observed history, else the context's."""
        estimates = self.comm_estimator.estimates()
        counts = self.comm_estimator.observation_counts()
        # Fall back to the context's estimate for links never observed.
        return np.where(counts > 0, estimates, ctx.comm_costs)

    # -- scheduling ----------------------------------------------------------------------
    def schedule(self, tasks: Sequence[Task], ctx: SchedulingContext) -> ScheduleAssignment:
        if ctx.n_processors != self.n_processors:
            raise ConfigurationError(
                f"context has {ctx.n_processors} processors but the scheduler was "
                f"configured for {self.n_processors}"
            )
        if not tasks:
            return ScheduleAssignment.empty(self.n_processors)

        problem = BatchProblem.from_tasks(
            tasks,
            rates=self._effective_rates(ctx),
            pending_loads=ctx.pending_loads,
            comm_costs=self._effective_comm_costs(ctx),
        )
        engine = GeneticAlgorithm(self.ga_config, rng=self._rng)
        result = engine.evolve(problem)
        self.history.append(result)
        return ScheduleAssignment(result.best_queues)

    # -- feedback hooks -------------------------------------------------------------------
    def observe_communication(self, proc: int, cost: float, time: float) -> None:
        """Fold an observed dispatch cost into the per-link Γ estimate."""
        self.comm_estimator.observe(proc, cost)

    def observe_completion(
        self, proc: int, task: Task, processing_time: float, time: float
    ) -> None:
        """Fold an observed effective execution rate into the per-processor Γ estimate."""
        if processing_time > 0:
            observed_rate = task.size_mflops / processing_time
            self._rate_estimates.update(proc, observed_rate)

    def reset(self) -> None:
        """Forget learned estimates and scheduling history."""
        self.comm_estimator.reset()
        self._rate_estimates.reset()
        self.batch_sizer.reset()
        self.history.clear()

    # -- introspection ----------------------------------------------------------------------
    @property
    def last_result(self) -> Optional[GAResult]:
        """GA result of the most recent batch (``None`` before the first batch)."""
        return self.history[-1] if self.history else None

    def total_generations(self) -> int:
        """Total GA generations run across all batches scheduled so far."""
        return int(sum(result.generations for result in self.history))
