"""Ablation benches — GA operator choices called out in the paper's design.

The paper motivates roulette-wheel selection and cycle crossover by prior
work rather than by measurement; these benches quantify how much the choice
matters on a representative batch problem, and confirm the re-balancing count
trade-off (Sect. 3.5: quality improves with more re-balances but the run time
grows, so the paper settles on a single re-balance per generation).
"""


from repro.experiments import make_benchmark_problem, sweep_ga_parameter
from repro.ga import GAConfig, GeneticAlgorithm

from _shared import FigureCache

_cache = FigureCache()


def _sweep(parameter, values, scale, seed, benchmark=None, repeats=2):
    key = f"{parameter}:{values}"
    return _cache.run_once(
        key,
        lambda: sweep_ga_parameter(
            parameter, list(values), scale=scale, seed=seed, repeats=repeats
        ),
        benchmark,
    )


class TestSelectionAblation:
    def test_ablation_selection_operator(self, benchmark, scale, seed):
        """Roulette (paper) vs tournament vs rank selection."""
        result = _sweep("selection", ("roulette", "tournament", "rank"), scale, seed, benchmark)
        makespans = result.makespans()
        assert set(makespans) == {"roulette", "tournament", "rank"}
        # no operator should be catastrophically worse than the paper's choice
        reference = makespans["roulette"]
        for value, makespan in makespans.items():
            assert makespan <= reference * 1.5, (value, makespans)


class TestCrossoverAblation:
    def test_ablation_crossover_operator(self, benchmark, scale, seed):
        """Cycle crossover (paper) vs PMX vs order crossover."""
        result = _sweep("crossover", ("cycle", "pmx", "order"), scale, seed, benchmark)
        makespans = result.makespans()
        assert set(makespans) == {"cycle", "pmx", "order"}
        reference = makespans["cycle"]
        for value, makespan in makespans.items():
            assert makespan <= reference * 1.5, (value, makespans)


class TestRebalanceAblation:
    def test_ablation_rebalance_count(self, benchmark, scale, seed):
        """0 vs 1 vs 5 re-balances: quality should not degrade as re-balances increase."""
        result = _sweep("n_rebalances", (0, 1, 5), scale, seed, benchmark)
        makespans = result.makespans()
        assert makespans[1] <= makespans[0] * 1.05
        assert makespans[5] <= makespans[0] * 1.05

    def test_ablation_rebalance_cost_grows(self, scale, seed):
        result = _sweep("n_rebalances", (0, 1, 5), scale, seed)
        wall_times = {p.value: p.wall_time.mean for p in result.points}
        assert wall_times[5] > wall_times[0]


class TestInitialisationAblation:
    def test_ablation_seeded_vs_random_initialisation(self, benchmark, scale, seed):
        """The list-scheduling seeded population should start (and end) better than random."""
        def run():
            problem = make_benchmark_problem(scale, seed=seed)
            outcomes = {}
            for seeded in (True, False):
                config = GAConfig(
                    population_size=20,
                    max_generations=scale.convergence_generations,
                    n_rebalances=1,
                    seeded_initialisation=seeded,
                )
                outcomes[seeded] = GeneticAlgorithm(config, rng=seed).evolve(problem)
            return outcomes

        outcomes = _cache.run_once("init", run, benchmark)
        seeded, random_init = outcomes[True], outcomes[False]
        assert seeded.initial_best_makespan <= random_init.initial_best_makespan
        assert seeded.best_makespan <= random_init.best_makespan * 1.1
