"""Experiment executors: serial and process-parallel job mapping.

The experiment harness repeats every measurement 20–50 times at paper scale,
and each repeat is statistically independent (its randomness comes from a
dedicated :class:`numpy.random.SeedSequence` child stream).  That makes the
repeat loop embarrassingly parallel, so the harness routes it through an
:class:`ExperimentExecutor`:

* :class:`SerialExecutor` runs jobs in-process, one after another — the
  reference behaviour, and the default;
* :class:`ParallelExecutor` shards jobs across a
  :class:`concurrent.futures.ProcessPoolExecutor`.

Both executors apply the *same* worker function to the *same* job specs and
return results in submission order, so aggregates computed from a parallel
run are bit-identical to the serial run with the same master seed.  Job specs
and worker functions must be picklable for the parallel path (module-level
functions plus plain dataclasses of numpy arrays and scalars); if a job
cannot be pickled the parallel executor transparently degrades to in-process
execution rather than failing the experiment.
"""

from __future__ import annotations

import os
import pickle
import warnings
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from ..util.errors import ConfigurationError

__all__ = [
    "ExperimentExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "executor_from_jobs",
    "resolve_executor",
]

J = TypeVar("J")
R = TypeVar("R")


class ExperimentExecutor(ABC):
    """Maps a worker function over a list of independent job specs.

    Implementations must preserve job order in the returned results and must
    not reorder, drop or duplicate jobs: the experiment harness relies on
    ``results[i]`` being ``fn(jobs[i])`` so that aggregate statistics do not
    depend on which executor ran them.
    """

    #: Number of worker processes the executor uses (1 for serial).
    jobs: int = 1

    @abstractmethod
    def map(self, fn: Callable[[J], R], jobs: Sequence[J]) -> List[R]:
        """Apply *fn* to every job and return the results in job order."""

    def describe(self) -> str:
        """Short identifier recorded in experiment results.

        Callers record this *after* mapping, so implementations may reflect
        what actually happened (e.g. a serial fallback).
        """
        return "serial"

    def close(self) -> None:
        """Release any worker resources (no-op for in-process executors)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialExecutor(ExperimentExecutor):
    """Run every job in the current process, in order."""

    jobs = 1

    def map(self, fn: Callable[[J], R], jobs: Sequence[J]) -> List[R]:
        return [fn(job) for job in jobs]

    def describe(self) -> str:
        return "serial"


class ParallelExecutor(ExperimentExecutor):
    """Shard jobs across worker processes.

    The underlying :class:`~concurrent.futures.ProcessPoolExecutor` is
    created lazily on the first parallel ``map`` and reused for subsequent
    calls, so multi-point experiments (one ``map`` per sweep point / figure
    condition) pay the worker spawn and import cost once.  Call
    :meth:`close` — or use the executor as a context manager — to shut the
    pool down eagerly; otherwise it is reclaimed at interpreter exit.

    Parameters
    ----------
    jobs:
        Number of worker processes; ``None`` uses the machine's CPU count.
    chunksize:
        How many jobs each worker pulls at a time.  The default of 1 is right
        for the harness's coarse jobs (one simulation repeat or GA run each).
    """

    def __init__(self, jobs: Optional[int] = None, *, chunksize: int = 1) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if int(jobs) < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if int(chunksize) < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
        self.jobs = int(jobs)
        self.chunksize = int(chunksize)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._degraded = False

    def describe(self) -> str:
        # Recorded in experiment results after mapping: be honest when an
        # unpicklable job forced the work back in-process.
        if self._degraded:
            return f"process[{self.jobs}]:serial-fallback"
        return f"process[{self.jobs}]"

    def close(self) -> None:
        """Shut down the worker pool (a later ``map`` recreates it)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _picklable(self, fn: Callable, jobs: Sequence) -> bool:
        # Probe with the function and one representative job; the harness's
        # job lists are homogeneous, so serialising all of them here would
        # only double the pickling work of the common (picklable) case.
        try:
            pickle.dumps(fn)
            pickle.dumps(jobs[0])
            return True
        except Exception:
            return False

    def map(self, fn: Callable[[J], R], jobs: Sequence[J]) -> List[R]:
        jobs = list(jobs)
        if self.jobs <= 1 or len(jobs) <= 1:
            return [fn(job) for job in jobs]
        if not self._picklable(fn, jobs):
            self._degraded = True
            warnings.warn(
                "job spec or worker function is not picklable; "
                "running serially in-process instead",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(job) for job in jobs]
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return list(self._pool.map(fn, jobs, chunksize=self.chunksize))


def executor_from_jobs(jobs: Optional[int]) -> ExperimentExecutor:
    """Build the executor matching a ``jobs`` count (``None``/``1`` = serial)."""
    if jobs is None or int(jobs) == 1:
        return SerialExecutor()
    if int(jobs) < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return ParallelExecutor(int(jobs))


def resolve_executor(
    executor: Optional[ExperimentExecutor], jobs: Optional[int]
) -> ExperimentExecutor:
    """An explicitly supplied executor wins; otherwise build one from *jobs*."""
    if executor is not None:
        return executor
    return executor_from_jobs(jobs)
