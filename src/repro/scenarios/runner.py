"""The sharded scenario-matrix runner.

One *cell* of the matrix is ``(scenario, scheduler, repeat)``: an independent
simulation of one scheduler against one materialisation of one scenario.
Cells are plain picklable job specs routed through a
:class:`~repro.parallel.ExperimentExecutor`, exactly like the experiment
harness's comparison repeats, so a matrix run shards across worker processes
with ``--jobs N`` while remaining bit-identical to the serial run:

* the master seed yields one 63-bit entropy draw per cell, in the fixed
  nested order (scenario, scheduler, repeat);
* each cell spawns its own four child streams (workload, cluster, simulation,
  scheduler) from a private ``SeedSequence``, so no randomness is shared
  between cells and results do not depend on which process ran them;
* aggregates are folded in cell order.

Every cell also verifies the fault-injection conservation invariant — each
arrived task (base workload plus load spikes) completed exactly once — and
the aggregate records whether any cell violated it.
"""

from __future__ import annotations

import logging
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..experiments.config import ExperimentScale, default_scale
from ..experiments.stats import SampleSummary, summarise
from ..parallel.executor import ExperimentExecutor, resolve_executor
from ..schedulers.registry import make_scheduler
from ..sim.simulation import SimulationConfig, simulate_schedule
from ..telemetry import span
from ..telemetry.monitor import RunMonitor
from ..util.errors import ConfigurationError
from ..util.rng import RNGLike, ensure_rng
from ..workloads.generator import generate_workload
from .dynamics import DynamicsTimeline
from .registry import get_scenario
from .spec import ScenarioSpec

logger = logging.getLogger("repro.scenarios")

__all__ = [
    "ScenarioCell",
    "ScenarioCellBlock",
    "ScenarioCellOutcome",
    "cell_workload",
    "run_scenario_cell",
    "run_scenario_cell_block",
    "ScenarioAggregate",
    "ScenarioMatrixResult",
    "aggregate_scenario_outcomes",
    "build_scenario_cells",
    "build_scenario_cell_blocks",
    "resolve_scenario_specs",
    "run_scenario_matrix",
]


@dataclass(frozen=True)
class ScenarioCell:
    """One independent unit of matrix work, as plain picklable data.

    ``seed_entropy`` fully determines the cell's randomness (the worker
    builds a private ``SeedSequence`` from it), so re-running a cell — in any
    process — reproduces it bit-for-bit.
    """

    spec: ScenarioSpec
    scheduler: str
    repeat: int
    seed_entropy: int
    batch_size: int
    max_generations: int
    ga_backend: str = "vectorized"
    sim_config: Optional[SimulationConfig] = None


@dataclass(frozen=True)
class ScenarioCellOutcome:
    """Everything the matrix aggregates from one cell."""

    scenario: str
    scheduler: str
    repeat: int
    makespan: float
    efficiency: float
    mean_response_time: float
    tasks_completed: int
    tasks_expected: int
    tasks_rescheduled: int
    tasks_reclaimed: int
    tasks_redirected: int
    tasks_injected: int
    worker_failures: int
    worker_recoveries: int
    worker_joins: int
    worker_downtime_seconds: float
    mean_queue_length: float
    scheduler_invocations: int
    events_processed: int
    #: True when every arrived task completed exactly once despite dynamics.
    conservation_ok: bool
    #: Measured wall-clock seconds of the cell's simulation (excludes
    #: workload/cluster construction); machine-dependent, so excluded from
    #: outcome equality and the determinism signature, but persisted for
    #: perf trajectories.
    wall_clock_seconds: float = field(default=0.0, compare=False)
    #: Simulation events processed per wall-clock second.
    events_per_second: float = field(default=0.0, compare=False)
    #: Per-phase cost attribution (see ``SimulationConfig.phase_timing``):
    #: wall-clock seconds spent invoking the scheduling policy, dispatching
    #: work to workers, and processing completions / the terminal drain.
    #: Machine-dependent like ``wall_clock_seconds``.
    scheduling_seconds: float = field(default=0.0, compare=False)
    dispatch_seconds: float = field(default=0.0, compare=False)
    drain_seconds: float = field(default=0.0, compare=False)


def cell_workload(cell: ScenarioCell):
    """The exact task set :func:`run_scenario_cell` would simulate.

    Re-derives the cell's workload child stream (first of the four spawned
    from ``seed_entropy``), so recording tools — notably
    ``repro traces record`` — capture the bit-identical arrival stream a run
    of the cell consumes, without simulating anything.
    """
    seed_seq = np.random.SeedSequence(cell.seed_entropy)
    workload_rng = np.random.default_rng(seed_seq.spawn(4)[0])
    return generate_workload(cell.spec.workload, workload_rng)


def run_scenario_cell(cell: ScenarioCell) -> ScenarioCellOutcome:
    """Simulate one matrix cell and verify task conservation.

    Spawns the same (workload, cluster, simulation, scheduler) child-stream
    layout as the experiment harness's comparison repeats, so cells are
    reproducible independent of executor and process placement.
    """
    with span(
        f"scenario:{cell.spec.name}/{cell.scheduler}/r{cell.repeat}",
        scenario=cell.spec.name,
        scheduler=cell.scheduler,
        repeat=cell.repeat,
    ):
        return _run_scenario_cell_impl(cell)


def _cell_setup(cell: ScenarioCell):
    """Build one cell's (tasks, cluster, scheduler, dynamics, sim seed).

    The single source of the cell's stream layout: both the per-cell runner
    and the batched block runner derive their simulations through it, so a
    cell's randomness never depends on which runner computed it.
    """
    seed_seq = np.random.SeedSequence(cell.seed_entropy)
    workload_rng, cluster_rng, sim_seed_rng, sched_seed_rng = (
        np.random.default_rng(child) for child in seed_seq.spawn(4)
    )
    spec = cell.spec
    tasks = generate_workload(spec.workload, workload_rng)
    cluster = spec.build_cluster(cluster_rng)
    scheduler = make_scheduler(
        cell.scheduler,
        n_processors=cluster.n_processors,
        batch_size=cell.batch_size,
        max_generations=cell.max_generations,
        ga_backend=cell.ga_backend,
        rng=int(sched_seed_rng.integers(0, 2**31 - 1)),
    )
    sim_seed = int(sim_seed_rng.integers(0, 2**31 - 1))
    return tasks, cluster, scheduler, DynamicsTimeline(spec.dynamics), sim_seed


def _run_scenario_cell_impl(cell: ScenarioCell) -> ScenarioCellOutcome:
    tasks, cluster, scheduler, dynamics, sim_seed = _cell_setup(cell)
    start = time.perf_counter()
    result = simulate_schedule(
        scheduler,
        cluster,
        tasks,
        config=cell.sim_config,
        dynamics=dynamics,
        rng=sim_seed,
    )
    wall_clock = time.perf_counter() - start
    return _cell_outcome(cell, tasks, result, wall_clock)


def _cell_outcome(
    cell: ScenarioCell, tasks, result, wall_clock: float
) -> ScenarioCellOutcome:
    spec = cell.spec
    completed_ids = result.trace.task_ids().tolist()
    expected = len(tasks) + result.tasks_injected
    conservation_ok = (
        len(completed_ids) == expected and len(set(completed_ids)) == len(completed_ids)
    )
    dynamics = result.metrics.dynamics
    return ScenarioCellOutcome(
        scenario=spec.name,
        scheduler=cell.scheduler,
        repeat=cell.repeat,
        makespan=float(result.makespan),
        efficiency=float(result.efficiency),
        mean_response_time=float(result.metrics.mean_response_time),
        tasks_completed=len(completed_ids),
        tasks_expected=expected,
        tasks_rescheduled=int(dynamics.tasks_rescheduled),
        tasks_reclaimed=int(dynamics.tasks_reclaimed),
        tasks_redirected=int(dynamics.tasks_redirected),
        tasks_injected=int(dynamics.tasks_injected),
        worker_failures=int(dynamics.worker_failures),
        worker_recoveries=int(dynamics.worker_recoveries),
        worker_joins=int(dynamics.worker_joins),
        worker_downtime_seconds=float(dynamics.worker_downtime_seconds),
        mean_queue_length=float(result.metrics.mean_queue_length),
        scheduler_invocations=int(result.scheduler_invocations),
        events_processed=int(result.events_processed),
        conservation_ok=conservation_ok,
        wall_clock_seconds=float(wall_clock),
        events_per_second=(
            float(result.events_processed / wall_clock) if wall_clock > 0 else 0.0
        ),
        scheduling_seconds=float(result.phase_seconds.get("scheduling", 0.0)),
        dispatch_seconds=float(result.phase_seconds.get("dispatch", 0.0)),
        drain_seconds=float(result.phase_seconds.get("drain", 0.0)),
    )


@dataclass(frozen=True)
class ScenarioCellBlock:
    """A block of matrix cells executed as one batched replay.

    All cells of a block share one (scenario, scheduler) pair; their repeats
    become the lanes of a single :func:`repro.sim.batch.run_batched_replay`
    call.  Each cell keeps its private seed entropy and outcome, so block
    execution is invisible to caching, resume and determinism signatures.
    """

    cells: Tuple[ScenarioCell, ...]


def run_scenario_cell_block(block: ScenarioCellBlock) -> Tuple[ScenarioCellOutcome, ...]:
    """Simulate a block of same-condition cells as one batched replay.

    Per-cell randomness is derived exactly as :func:`run_scenario_cell`
    derives it; cells that cannot join the batched tier (dynamic scenarios,
    GA schedulers) fall back per lane inside the batch engine.  The block's
    simulation wall-clock is split evenly across its cells (the timing
    fields are machine-dependent and excluded from outcome equality).
    """
    from ..sim.batch import run_batched_replay
    from ..sim.simulation import DistributedSystemSimulation

    if not block.cells:
        return ()
    with span(
        f"scenario:{block.cells[0].spec.name}/{block.cells[0].scheduler}/block",
        scenario=block.cells[0].spec.name,
        scheduler=block.cells[0].scheduler,
        repeats=len(block.cells),
    ):
        lanes = []
        for cell in block.cells:
            tasks, cluster, scheduler, dynamics, sim_seed = _cell_setup(cell)
            sim = DistributedSystemSimulation(
                scheduler,
                cluster,
                tasks,
                config=cell.sim_config,
                dynamics=dynamics,
                rng=sim_seed,
            )
            lanes.append((cell, tasks, sim))
        start = time.perf_counter()
        results = run_batched_replay([sim for _, _, sim in lanes])
        per_cell_clock = (time.perf_counter() - start) / len(block.cells)
        return tuple(
            _cell_outcome(cell, tasks, result, per_cell_clock)
            for (cell, tasks, _), result in zip(lanes, results)
        )


def build_scenario_cell_blocks(
    cells: Sequence[ScenarioCell], lane_width: Optional[int] = None
) -> List[ScenarioCellBlock]:
    """Group consecutive same-(scenario, scheduler) cells into lane blocks.

    Cells arrive in the matrix's nested (scenario, scheduler, repeat) order,
    so grouping consecutive runs keeps every block homogeneous and preserves
    cell order across the flattened block outcomes.
    """
    from ..sim.batch import BATCH_LANE_WIDTH

    width = lane_width if lane_width is not None else BATCH_LANE_WIDTH
    blocks: List[ScenarioCellBlock] = []
    run: List[ScenarioCell] = []
    for cell in cells:
        if run and (
            (cell.spec.name, cell.scheduler) != (run[0].spec.name, run[0].scheduler)
            or len(run) >= width
        ):
            blocks.append(ScenarioCellBlock(cells=tuple(run)))
            run = []
        run.append(cell)
    if run:
        blocks.append(ScenarioCellBlock(cells=tuple(run)))
    return blocks


@dataclass(frozen=True)
class ScenarioAggregate:
    """Per-(scenario, scheduler) summaries over all repeats."""

    scenario: str
    scheduler: str
    repeats: int
    makespan: SampleSummary
    efficiency: SampleSummary
    mean_response_time: SampleSummary
    tasks_rescheduled: SampleSummary
    worker_downtime_seconds: SampleSummary
    mean_queue_length: SampleSummary
    conservation_ok: bool
    #: Machine-dependent timing summaries (not part of the determinism
    #: signature): simulation wall-clock per cell, events per second, and
    #: the per-phase breakdown (scheduling vs dispatch vs drain).
    wall_clock_seconds: Optional[SampleSummary] = None
    events_per_second: Optional[SampleSummary] = None
    scheduling_seconds: Optional[SampleSummary] = None
    dispatch_seconds: Optional[SampleSummary] = None
    drain_seconds: Optional[SampleSummary] = None


@dataclass
class ScenarioMatrixResult:
    """Outcome of one scenario-matrix run."""

    scenarios: List[str]
    schedulers: List[str]
    repeats: int
    outcomes: List[ScenarioCellOutcome]
    aggregates: Dict[str, Dict[str, ScenarioAggregate]] = field(default_factory=dict)
    executor: str = "serial"
    scale_name: str = ""

    def aggregate(self, scenario: str, scheduler: str) -> ScenarioAggregate:
        """The aggregate of one (scenario, scheduler) pair."""
        try:
            return self.aggregates[scenario][scheduler]
        except KeyError:
            raise ConfigurationError(
                f"no aggregate for scenario {scenario!r} / scheduler {scheduler!r}"
            ) from None

    def conservation_ok(self) -> bool:
        """Whether every cell in the matrix conserved its tasks."""
        return all(outcome.conservation_ok for outcome in self.outcomes)

    def best_by_makespan(self, scenario: str) -> str:
        """Scheduler with the lowest mean makespan on *scenario*."""
        aggs = self.aggregates[scenario]
        return min(aggs, key=lambda s: aggs[s].makespan.mean)

    def signature(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Executor-independent nested dict of every aggregate number.

        Serial and ``--jobs N`` runs with the same seed must produce equal
        signatures — CI asserts this bit-for-bit.
        """
        return {
            scenario: {
                scheduler: {
                    "makespan_mean": agg.makespan.mean,
                    "makespan_std": agg.makespan.std,
                    "efficiency_mean": agg.efficiency.mean,
                    "efficiency_std": agg.efficiency.std,
                    "mean_response_time": agg.mean_response_time.mean,
                    "tasks_rescheduled_mean": agg.tasks_rescheduled.mean,
                    "worker_downtime_mean": agg.worker_downtime_seconds.mean,
                    "mean_queue_length": agg.mean_queue_length.mean,
                    "conservation_ok": float(agg.conservation_ok),
                }
                for scheduler, agg in by_scheduler.items()
            }
            for scenario, by_scheduler in self.aggregates.items()
        }

    def timing(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Machine-dependent per-aggregate timing (wall-clock, events/sec).

        Deliberately separate from :meth:`signature`: wall-clock numbers vary
        between runs and machines, so they are persisted for performance
        trajectories but excluded from the serial-vs-parallel equality that
        CI asserts bit-for-bit.
        """
        def row(agg: ScenarioAggregate) -> Dict[str, float]:
            entry = {
                "wall_clock_mean_seconds": agg.wall_clock_seconds.mean,
                "wall_clock_std_seconds": agg.wall_clock_seconds.std,
                "events_per_second_mean": agg.events_per_second.mean,
            }
            # Per-phase attribution (scheduling vs dispatch vs drain), when
            # the cells were run with ``SimulationConfig.phase_timing``.
            if agg.scheduling_seconds is not None:
                entry["scheduling_mean_seconds"] = agg.scheduling_seconds.mean
            if agg.dispatch_seconds is not None:
                entry["dispatch_mean_seconds"] = agg.dispatch_seconds.mean
            if agg.drain_seconds is not None:
                entry["drain_mean_seconds"] = agg.drain_seconds.mean
            return entry

        return {
            scenario: {
                scheduler: row(agg)
                for scheduler, agg in by_scheduler.items()
                if agg.wall_clock_seconds is not None
                and agg.events_per_second is not None
            }
            for scenario, by_scheduler in self.aggregates.items()
        }


def aggregate_scenario_outcomes(
    outcomes: Sequence[ScenarioCellOutcome],
) -> Dict[str, Dict[str, ScenarioAggregate]]:
    """Group cell outcomes by (scenario, scheduler) and summarise each group.

    Folding happens in outcome order, so callers that assemble *outcomes*
    deterministically (the matrix runner, the campaign runner re-reading its
    store) get bit-identical aggregates no matter who computed the cells.
    """
    grouped: Dict[Tuple[str, str], List[ScenarioCellOutcome]] = {}
    for outcome in outcomes:
        grouped.setdefault((outcome.scenario, outcome.scheduler), []).append(outcome)
    aggregates: Dict[str, Dict[str, ScenarioAggregate]] = {}
    for (scenario, scheduler), cells in grouped.items():
        # Phase attribution is opt-in (SimulationConfig.phase_timing): cells
        # run without it report identical zeros, which must surface as
        # "not measured" rather than as a measurement of 0.0 seconds.
        phases_measured = any(
            c.scheduling_seconds or c.dispatch_seconds or c.drain_seconds
            for c in cells
        )
        aggregates.setdefault(scenario, {})[scheduler] = ScenarioAggregate(
            scenario=scenario,
            scheduler=scheduler,
            repeats=len(cells),
            makespan=summarise(c.makespan for c in cells),
            efficiency=summarise(c.efficiency for c in cells),
            mean_response_time=summarise(c.mean_response_time for c in cells),
            tasks_rescheduled=summarise(float(c.tasks_rescheduled) for c in cells),
            worker_downtime_seconds=summarise(
                c.worker_downtime_seconds for c in cells
            ),
            mean_queue_length=summarise(c.mean_queue_length for c in cells),
            conservation_ok=all(c.conservation_ok for c in cells),
            wall_clock_seconds=summarise(c.wall_clock_seconds for c in cells),
            events_per_second=summarise(c.events_per_second for c in cells),
            scheduling_seconds=(
                summarise(c.scheduling_seconds for c in cells)
                if phases_measured
                else None
            ),
            dispatch_seconds=(
                summarise(c.dispatch_seconds for c in cells)
                if phases_measured
                else None
            ),
            drain_seconds=(
                summarise(c.drain_seconds for c in cells) if phases_measured else None
            ),
        )
    return aggregates


def resolve_scenario_specs(
    scenarios: Sequence[Union[str, ScenarioSpec]], scale: ExperimentScale
) -> List[ScenarioSpec]:
    """Resolve names through the library (sized at *scale*), validate uniqueness."""
    specs: List[ScenarioSpec] = [
        get_scenario(item, scale) if isinstance(item, str) else item for item in scenarios
    ]
    if not specs:
        raise ConfigurationError("scenario matrix needs at least one scenario")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate scenario names in matrix: {names}")
    return specs


def build_scenario_cells(
    specs: Sequence[ScenarioSpec],
    *,
    scale: ExperimentScale,
    schedulers: Optional[Sequence[str]],
    n_repeats: int,
    sim_config: SimulationConfig,
    master_rng,
) -> Tuple[List[ScenarioCell], List[str]]:
    """Expand (scenario × scheduler × repeat) into cells, in matrix order.

    One 63-bit entropy draw is taken from *master_rng* per cell, in the fixed
    nested (scenario, scheduler, repeat) order.  This is the single source of
    the matrix seed derivation: the matrix runner and the campaign runner
    both call it, so a campaign's scenario cells are bit-identical — same
    cache keys, same results — to a direct ``run_scenario_matrix`` with the
    same master seed.  Returns the cells and the ordered scheduler union.
    """
    cells: List[ScenarioCell] = []
    scheduler_union: List[str] = []
    for spec in specs:
        # Deduplicate while keeping order: a repeated name (e.g. CLI
        # `--schedulers EF EF`) must not silently double a cell's repeats.
        cell_schedulers = list(
            dict.fromkeys(s.upper() for s in (schedulers or spec.schedulers))
        )
        for scheduler in cell_schedulers:
            if scheduler not in scheduler_union:
                scheduler_union.append(scheduler)
            for repeat in range(n_repeats):
                cells.append(
                    ScenarioCell(
                        spec=spec,
                        scheduler=scheduler,
                        repeat=repeat,
                        seed_entropy=int(master_rng.integers(0, 2**63 - 1)),
                        batch_size=scale.batch_size,
                        max_generations=scale.max_generations,
                        ga_backend=scale.ga_backend,
                        sim_config=sim_config,
                    )
                )
    return cells, scheduler_union


def run_scenario_matrix(
    scenarios: Sequence[Union[str, ScenarioSpec]],
    *,
    scale: Optional[ExperimentScale] = None,
    schedulers: Optional[Sequence[str]] = None,
    repeats: Optional[int] = None,
    seed: RNGLike = None,
    sim_config: Optional[SimulationConfig] = None,
    executor: Optional[ExperimentExecutor] = None,
    jobs: Optional[int] = None,
    status_path: Optional[str] = None,
) -> ScenarioMatrixResult:
    """Run the (scenario × scheduler × repeat) matrix and aggregate it.

    Parameters
    ----------
    scenarios:
        Scenario names (resolved through the library at *scale*) or explicit
        :class:`ScenarioSpec` objects, freely mixed.
    scale:
        Experiment scale; sizes library scenarios and supplies the batch
        size, GA budget, default repeat count, GA backend and default
        ``jobs``.
    schedulers:
        Scheduler set for every scenario; defaults to each scenario's own
        ``schedulers`` tuple.
    repeats:
        Independent repeats per (scenario, scheduler); default
        ``scale.repeats``.
    seed:
        Master seed; per-cell streams are derived from it in matrix order.
    executor, jobs:
        Routing of the cells: an explicit executor wins, else *jobs* (else
        ``scale.jobs``) selects serial or process-parallel execution.
        Aggregates are bit-identical for any choice.
    status_path:
        When given, a live :class:`~repro.telemetry.monitor.RunMonitor`
        status file is maintained there (heartbeats per completed cell plus
        per-worker progress files) so the matrix can be watched in flight
        with ``repro campaigns watch --status-file``.
    """
    scale = scale or default_scale()
    specs = resolve_scenario_specs(scenarios, scale)
    n_repeats = int(repeats) if repeats is not None else scale.repeats
    if n_repeats <= 0:
        raise ConfigurationError(f"repeats must be positive, got {n_repeats}")

    executor = resolve_executor(
        executor, jobs if jobs is not None else scale.jobs, scale.executor
    )
    if sim_config is None:
        # An explicit sim_config wins; otherwise the scale's simulation and
        # policy backend choices (CLI --sim-backend / --policy-backend) are
        # threaded into every cell.  Phase timing is on for matrix cells:
        # the per-phase records guide hot-path work and the per-cell clock
        # reads are in the noise next to each cell's workload/cluster
        # construction.
        sim_config = SimulationConfig(
            sim_backend=scale.sim_backend,
            policy_backend=scale.policy_backend,
            phase_timing=True,
        )
    cells, scheduler_union = build_scenario_cells(
        specs,
        scale=scale,
        schedulers=schedulers,
        n_repeats=n_repeats,
        sim_config=sim_config,
        master_rng=ensure_rng(seed),
    )

    logger.info(
        "scenario matrix: %d cells (%d scenarios x %d schedulers x %d repeats) via %s",
        len(cells),
        len(specs),
        len(scheduler_union),
        n_repeats,
        executor.describe(),
    )
    start = time.perf_counter()
    outcomes: List[ScenarioCellOutcome] = []
    blocks = (
        build_scenario_cell_blocks(cells) if sim_config.sim_backend == "batch" else None
    )
    monitor = None
    if status_path is not None:
        monitor = RunMonitor(
            status_path,
            name="scenario-matrix",
            total_units=len(cells),
            executor=executor.describe(),
            lane_widths=[len(b.cells) for b in blocks] if blocks is not None else (),
        )
    with span(
        "scenarios:matrix",
        n_cells=len(cells),
        repeats=n_repeats,
        executor=executor.describe(),
    ):
        # Stream rather than map so progress is reported as cells land —
        # aggregation still folds the full list in submission order below.
        # Under the batch backend a (scenario, scheduler) group's repeats run
        # as one lane block per executor job; the flattened outcomes keep
        # exact cell order, so aggregation is unchanged.
        try:
            with (monitor.heartbeats() if monitor is not None else nullcontext()):
                if blocks is not None:
                    stream = (
                        outcome
                        for block_outcomes in executor.imap(
                            run_scenario_cell_block, blocks
                        )
                        for outcome in block_outcomes
                    )
                else:
                    stream = executor.imap(run_scenario_cell, cells)
                for outcome in stream:
                    outcomes.append(outcome)
                    elapsed = time.perf_counter() - start
                    rate = len(outcomes) / elapsed if elapsed > 0 else 0.0
                    eta = (len(cells) - len(outcomes)) / rate if rate > 0 else float("inf")
                    if monitor is not None:
                        monitor.cell_event(
                            f"{outcome.scenario}/{outcome.scheduler}/r{outcome.repeat}",
                            "computed",
                            outcome.wall_clock_seconds,
                        )
                    logger.info(
                        "scenario matrix: %d/%d cells (%.2f cells/s, eta %.0fs)",
                        len(outcomes),
                        len(cells),
                        rate,
                        eta,
                    )
        except BaseException:
            if monitor is not None:
                monitor.finish("interrupted", "matrix run aborted")
            raise
    if monitor is not None:
        monitor.finish("finished")
    return ScenarioMatrixResult(
        scenarios=[spec.name for spec in specs],
        schedulers=scheduler_union,
        repeats=n_repeats,
        outcomes=list(outcomes),
        aggregates=aggregate_scenario_outcomes(outcomes),
        executor=executor.describe(),
        scale_name=scale.name,
    )
