"""Event types of the discrete-event simulation."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

from ..util.errors import SimulationError

__all__ = ["EventKind", "Event"]


class EventKind(enum.Enum):
    """The four kinds of events driving the master/worker simulation."""

    #: A task has arrived at the master and joined the unscheduled queue.
    TASK_ARRIVAL = "task_arrival"
    #: The master should run its scheduling policy over the unscheduled queue.
    INVOKE_SCHEDULER = "invoke_scheduler"
    #: An idle worker asks the master for the next task in its queue.
    WORKER_FETCH = "worker_fetch"
    #: A worker finished processing a task.
    TASK_COMPLETION = "task_completion"


_sequence = itertools.count()


@dataclass(order=True, frozen=True)
class Event:
    """A single scheduled occurrence in simulated time.

    Events compare by ``(time, seq)`` so simultaneous events retain their
    insertion order, which keeps the simulation deterministic.
    """

    time: float
    seq: int = field(compare=True)
    kind: EventKind = field(compare=False)
    data: Dict[str, Any] = field(compare=False, default_factory=dict)

    @classmethod
    def make(cls, time: float, kind: EventKind, **data: Any) -> "Event":
        """Create an event with an automatically increasing sequence number."""
        if time < 0:
            raise SimulationError(f"event time must be >= 0, got {time}")
        return cls(time=float(time), seq=next(_sequence), kind=kind, data=dict(data))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event(t={self.time:.4g}, kind={self.kind.value}, data={self.data})"
