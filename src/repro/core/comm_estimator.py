"""Communication-cost estimation from historical observations.

The PN scheduler's key informational advantage over the baselines (paper
Sect. 5) is that it *predicts* the communication cost of dispatching a task
to each client before deciding where to place it, using the Γ-smoothed
history of previously observed dispatch costs.  The baselines only feel
communication costs after the fact.
"""

from __future__ import annotations


import numpy as np

from ..util.errors import ConfigurationError
from ..util.smoothing import SmoothedMap
from ..util.validation import require_non_negative, require_positive_int, require_probability

__all__ = ["CommCostEstimator"]


class CommCostEstimator:
    """Per-processor smoothed estimates of dispatch communication cost.

    Parameters
    ----------
    n_processors:
        Number of processors (links) to track.
    nu:
        Smoothing factor of the Γ updates.
    prior:
        Estimate returned for a link before any observation has been made.
        The default of 0.0 makes an unobserved link look free, which matches
        the paper's scheduler learning costs purely from history.
    """

    def __init__(self, n_processors: int, nu: float = 0.5, prior: float = 0.0):
        self.n_processors = require_positive_int(n_processors, "n_processors")
        require_probability(nu, "nu")
        self.prior = require_non_negative(prior, "prior")
        self._estimates = SmoothedMap(nu=nu, default=self.prior)

    def observe(self, proc: int, cost_seconds: float) -> float:
        """Record one measured dispatch cost for *proc*'s link; returns the new estimate."""
        self._check_proc(proc)
        require_non_negative(cost_seconds, "cost_seconds")
        return self._estimates.update(proc, float(cost_seconds))

    def estimate(self, proc: int) -> float:
        """Current smoothed estimate for *proc*'s link (prior if never observed)."""
        self._check_proc(proc)
        return self._estimates.get(proc)

    def estimates(self) -> np.ndarray:
        """Vector of estimates for every processor, ordered by processor index."""
        return np.array([self._estimates.get(p) for p in range(self.n_processors)], dtype=float)

    def observation_counts(self) -> np.ndarray:
        """Number of observations folded in per processor."""
        return np.array(
            [self._estimates.observation_count(p) for p in range(self.n_processors)], dtype=int
        )

    def mean_estimate(self) -> float:
        """Mean of the per-link estimates (the scheduler-side view of Figs. 5/7's x-axis)."""
        return float(self.estimates().mean())

    def reset(self) -> None:
        """Forget every observation."""
        self._estimates.reset()

    def _check_proc(self, proc: int) -> None:
        if not (0 <= int(proc) < self.n_processors):
            raise ConfigurationError(
                f"processor index {proc} out of range [0, {self.n_processors})"
            )
