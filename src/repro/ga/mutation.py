"""Mutation operators: random swaps and the re-balancing heuristic.

The paper employs two kinds of mutation (Sect. 3.3 and 3.5):

* **random swap** — exchange two randomly chosen genes of a randomly chosen
  individual; because delimiters are genes too this can move tasks between
  queues as well as reorder them within a queue;
* **re-balancing heuristic** — pick the most heavily loaded processor,
  randomly probe tasks on other processors, and swap a probed task with a
  larger task on the heavy processor when that improves the schedule
  (accepted only if the resulting individual is fitter, with at most five
  probes per re-balance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..util.errors import ConfigurationError
from ..util.rng import RNGLike, ensure_rng
from ..util.validation import require_at_least, require_positive_int
from .problem import BatchProblem

__all__ = [
    "swap_mutation",
    "apply_position_swaps",
    "RebalanceOutcome",
    "rebalance_assignment",
    "rebalance_many",
]


def swap_mutation(chromosome: np.ndarray, rng: RNGLike = None, n_swaps: int = 1) -> np.ndarray:
    """Return a copy of *chromosome* with *n_swaps* random gene exchanges.

    Swapping two task genes in different queues moves both tasks; swapping a
    task gene with a delimiter shifts the queue boundary.  Either way the
    result remains a valid permutation, so no repair step is needed.
    """
    n_swaps = require_at_least(n_swaps, 0, "n_swaps")
    chrom = np.asarray(chromosome, dtype=int).copy()
    if chrom.size < 2 or n_swaps == 0:
        return chrom
    gen = ensure_rng(rng)
    for _ in range(n_swaps):
        i, j = gen.choice(chrom.size, size=2, replace=False)
        chrom[i], chrom[j] = chrom[j], chrom[i]
    return chrom


def apply_position_swaps(
    chromosome: np.ndarray, i_positions: np.ndarray, j_positions: np.ndarray
) -> None:
    """Exchange the genes at each ``(i, j)`` position pair in order, in place.

    This is the deterministic half of swap mutation: the position pairs are
    drawn separately (see :func:`repro.ga.kernels.draw_swap_positions`) so the
    loop and vectorized backends can share one stream of draws and produce
    bit-identical children.
    """
    for i, j in zip(i_positions, j_positions):
        chromosome[i], chromosome[j] = chromosome[j], chromosome[i]


@dataclass(frozen=True)
class RebalanceOutcome:
    """Result of applying the re-balancing heuristic to one assignment."""

    assignment: np.ndarray
    completions: np.ndarray
    improved: bool
    swapped: Optional[Tuple[int, int]] = None  # (task moved off heavy proc, task moved on)

    @property
    def makespan(self) -> float:
        """Makespan of the (possibly rebalanced) assignment."""
        return float(self.completions.max())


def _error(completions: np.ndarray, psi: float) -> float:
    deviation = completions - psi
    return float(np.sqrt(np.sum(deviation**2)))


def rebalance_assignment(
    assignment: np.ndarray,
    completions: np.ndarray,
    problem: BatchProblem,
    rng: RNGLike = None,
    max_probes: int = 5,
) -> RebalanceOutcome:
    """Apply one re-balance attempt to an assignment vector.

    Parameters
    ----------
    assignment:
        Task-index → processor vector of the individual (not modified).
    completions:
        The individual's current per-processor completion times (consistent
        with *assignment*); supplying them avoids a full re-evaluation.
    problem:
        The batch problem (sizes, rates, comm estimates, ψ).
    max_probes:
        Maximum number of random probes for a smaller task on other
        processors (the paper allows at most five).

    Returns
    -------
    RebalanceOutcome
        The accepted assignment (the original if no improving swap was found)
        together with its completion-time vector.

    Notes
    -----
    The swap exchanges a task from the most heavily loaded processor with a
    *smaller* task from another processor, and is kept only if the schedule's
    relative error improves — exactly the accept test of the paper (the
    "fitter" schedule is the one with the smaller error, hence larger
    ``F = 1/E``).
    """
    max_probes = require_positive_int(max_probes, "max_probes")
    assignment = np.asarray(assignment, dtype=int)
    completions = np.asarray(completions, dtype=float)
    if assignment.shape[0] != problem.n_tasks:
        raise ConfigurationError("assignment length must equal the number of tasks in the batch")
    if completions.shape[0] != problem.n_processors:
        raise ConfigurationError("completions length must equal the number of processors")
    gen = ensure_rng(rng)

    heavy_proc = int(np.argmax(completions))
    heavy_tasks = np.nonzero(assignment == heavy_proc)[0]
    other_tasks = np.nonzero(assignment != heavy_proc)[0]
    if heavy_tasks.size == 0 or other_tasks.size == 0:
        return RebalanceOutcome(assignment.copy(), completions.copy(), improved=False)

    psi = problem.optimal_time()
    current_error = _error(completions, psi)

    # One randomly selected task from another processor...
    candidate = int(other_tasks[gen.integers(0, other_tasks.size)])
    candidate_proc = int(assignment[candidate])
    candidate_size = float(problem.sizes[candidate])

    # ...probed against up to `max_probes` random tasks on the heavy processor.
    probes = gen.choice(heavy_tasks, size=min(max_probes, heavy_tasks.size), replace=False)
    for probe in probes:
        probe = int(probe)
        probe_size = float(problem.sizes[probe])
        if candidate_size >= probe_size:
            continue  # only swap in a strictly smaller task
        updated = completions.copy()
        updated[heavy_proc] += (candidate_size - probe_size) / problem.rates[heavy_proc]
        updated[candidate_proc] += (probe_size - candidate_size) / problem.rates[candidate_proc]
        if _error(updated, psi) < current_error:
            new_assignment = assignment.copy()
            new_assignment[probe] = candidate_proc
            new_assignment[candidate] = heavy_proc
            return RebalanceOutcome(
                assignment=new_assignment,
                completions=updated,
                improved=True,
                swapped=(probe, candidate),
            )
    return RebalanceOutcome(assignment.copy(), completions.copy(), improved=False)


def rebalance_many(
    assignment: np.ndarray,
    completions: np.ndarray,
    problem: BatchProblem,
    n_rebalances: int,
    rng: RNGLike = None,
    max_probes: int = 5,
) -> RebalanceOutcome:
    """Apply the re-balancing heuristic *n_rebalances* times in sequence.

    Each accepted swap updates the working assignment, so later re-balances
    see the improved schedule (this is how "50 rebalances per individual per
    generation" is realised in the paper's Fig. 3 study).
    """
    n_rebalances = require_at_least(n_rebalances, 0, "n_rebalances")
    gen = ensure_rng(rng)
    current = RebalanceOutcome(
        np.asarray(assignment, dtype=int).copy(),
        np.asarray(completions, dtype=float).copy(),
        improved=False,
    )
    any_improved = False
    for _ in range(n_rebalances):
        outcome = rebalance_assignment(
            current.assignment, current.completions, problem, gen, max_probes=max_probes
        )
        any_improved = any_improved or outcome.improved
        current = outcome
    return RebalanceOutcome(
        assignment=current.assignment,
        completions=current.completions,
        improved=any_improved,
        swapped=current.swapped,
    )
