"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.config import SCALES


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_figure_commands_exist(self):
        parser = build_parser()
        for figure_id in [f"fig{i}" for i in range(3, 12)]:
            args = parser.parse_args([figure_id, "--scale", "smoke", "--seed", "1"])
            assert args.command == figure_id
            assert args.scale == "smoke"
            assert args.seed == 1

    def test_compare_command_options(self):
        args = build_parser().parse_args(
            ["compare", "--workload", "poisson_small", "--comm-cost", "3.5", "--tasks", "40"]
        )
        assert args.workload == "poisson_small"
        assert args.comm_cost == 3.5
        assert args.tasks == 40

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--scale", "enormous"])

    def test_sim_backend_option_parses(self):
        args = build_parser().parse_args(["fig5", "--sim-backend", "event"])
        assert args.sim_backend == "event"
        args = build_parser().parse_args(["compare", "--sim-backend", "fast"])
        assert args.sim_backend == "fast"

    def test_invalid_sim_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--sim-backend", "warp"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        for scale in SCALES:
            assert scale in out

    def test_compare_smoke(self, capsys):
        code = main(
            [
                "compare",
                "--scale",
                "smoke",
                "--seed",
                "1",
                "--workload",
                "uniform_narrow",
                "--comm-cost",
                "2.0",
                "--tasks",
                "25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PN" in out and "makespan_mean" in out

    def test_compare_backends_print_identical_tables(self, capsys):
        outputs = {}
        for backend in ("event", "fast"):
            code = main(
                [
                    "compare",
                    "--scale",
                    "smoke",
                    "--seed",
                    "1",
                    "--workload",
                    "uniform_narrow",
                    "--comm-cost",
                    "2.0",
                    "--tasks",
                    "20",
                    "--sim-backend",
                    backend,
                ]
            )
            assert code == 0
            outputs[backend] = capsys.readouterr().out
        assert outputs["event"] == outputs["fast"]

    def test_figure4_smoke(self, capsys):
        assert main(["fig4", "--scale", "smoke", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "rebalances_per_generation" in out


class TestScenariosCLI:
    def test_scenarios_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])

    def test_scenarios_run_parses_options(self):
        args = build_parser().parse_args(
            [
                "scenarios",
                "run",
                "failure-storm",
                "elastic-scale-out",
                "--scale",
                "smoke",
                "--seed",
                "3",
                "--jobs",
                "2",
                "--repeats",
                "4",
                "--schedulers",
                "EF",
                "LL",
            ]
        )
        assert args.command == "scenarios"
        assert args.scenario_command == "run"
        assert args.names == ["failure-storm", "elastic-scale-out"]
        assert args.repeats == 4
        assert args.schedulers == ["EF", "LL"]

    def test_scenarios_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["scenarios", "run", "failure-storm", "--schedulers", "nope"]
            )

    def test_scenarios_list_smoke(self, capsys):
        assert main(["scenarios", "list", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "failure-storm" in out
        assert "elastic-scale-out" in out
        assert "load spike" in out

    def test_scenarios_run_smoke_with_output(self, capsys, tmp_path):
        output = tmp_path / "matrix.json"
        code = main(
            [
                "scenarios",
                "run",
                "failure-storm",
                "--scale",
                "smoke",
                "--seed",
                "7",
                "--repeats",
                "1",
                "--schedulers",
                "EF",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "failure-storm" in out and "conserved" in out
        assert output.exists()

    def test_scenarios_run_unknown_scenario_fails_cleanly(self, capsys):
        code = main(["scenarios", "run", "no-such-thing", "--scale", "smoke"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestExecutorOption:
    def test_executor_option_parses(self):
        args = build_parser().parse_args(["fig5", "--executor", "async"])
        assert args.executor == "async"

    def test_invalid_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--executor", "cluster"])

    def test_compare_runs_with_async_executor(self, capsys):
        code = main(
            [
                "compare",
                "--scale",
                "smoke",
                "--seed",
                "1",
                "--tasks",
                "20",
                "--comm-cost",
                "2.0",
                "--jobs",
                "2",
                "--executor",
                "async",
            ]
        )
        assert code == 0
        assert "async[2]" in capsys.readouterr().out


class TestCampaignsCLI:
    def _run_args(self, store, extra=()):
        return [
            "campaigns",
            "run",
            "--store",
            str(store),
            "--name",
            "cli-test",
            "--scenarios",
            "failure-storm",
            "--schedulers",
            "EF",
            "--repeats",
            "2",
            "--scale",
            "smoke",
            "--seed",
            "7",
            *extra,
        ]

    def test_campaigns_requires_subcommand_and_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaigns"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaigns", "run"])

    def test_campaigns_run_parses_options(self, tmp_path):
        args = build_parser().parse_args(
            self._run_args(
                tmp_path / "store",
                [
                    "--max-cells",
                    "3",
                    "--sweep",
                    "n_rebalances",
                    "0",
                    "1",
                    "--sweep-repeats",
                    "4",
                ],
            )
        )
        assert args.command == "campaigns"
        assert args.campaign_command == "run"
        assert args.max_cells == 3
        assert args.sweep == ["n_rebalances", "0", "1"]
        assert args.sweep_repeats == 4

    def test_interrupted_map_exits_130(self, capsys, monkeypatch):
        from repro import cli
        from repro.util.errors import ExperimentInterrupted

        def fake_run_figure(*args, **kwargs):
            raise ExperimentInterrupted({0: "partial"}, 5)

        monkeypatch.setattr(cli, "run_figure", fake_run_figure)
        code = main(["fig6", "--scale", "smoke", "--seed", "1"])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err and "1/5" in err

    def test_empty_campaign_fails_cleanly(self, capsys, tmp_path):
        code = main(
            ["campaigns", "run", "--store", str(tmp_path / "s"), "--name", "empty"]
        )
        assert code == 2
        assert "empty" in capsys.readouterr().err

    def test_run_interrupt_resume_and_warm_rerun(self, capsys, tmp_path):
        store = tmp_path / "store"
        # Interrupt deterministically after 1 computed cell: exit code 3.
        assert main(self._run_args(store, ["--max-cells", "1"])) == 3
        out = capsys.readouterr().out
        assert "interrupted" in out and "1 computed" in out
        # Status shows the partial state.
        assert main(["campaigns", "status", "--store", str(store), "cli-test"]) == 0
        out = capsys.readouterr().out
        assert "1/2 cells" in out and "pending" in out
        # Resume completes the rest.
        assert main(["campaigns", "resume", "--store", str(store), "cli-test"]) == 0
        out = capsys.readouterr().out
        assert "complete" in out and "1 cached" in out
        # Warm rerun computes nothing.
        assert main(self._run_args(store)) == 0
        out = capsys.readouterr().out
        assert "0 computed" in out and "2 cached" in out

    def test_status_lists_campaigns(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(self._run_args(store)) == 0
        capsys.readouterr()
        assert main(["campaigns", "status", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "cli-test: complete" in out
        assert "scenario_cell" in out

    def test_resume_unknown_campaign_fails_cleanly(self, capsys, tmp_path):
        code = main(["campaigns", "resume", "--store", str(tmp_path / "s"), "nope"])
        assert code == 2
        assert "no campaign" in capsys.readouterr().err
