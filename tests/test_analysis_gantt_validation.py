"""Tests for Gantt rendering and schedule validation."""

import pytest

from repro.analysis import (
    render_gantt,
    utilisation_sparkline,
    validate_simulation,
    validate_trace,
)
from repro.cluster import homogeneous_cluster
from repro.schedulers import EarliestFirstScheduler
from repro.sim import ExecutionTrace, TaskRecord, simulate_schedule
from repro.util.errors import ConfigurationError
from repro.workloads import Task, TaskSet, UniformSizes, WorkloadSpec, generate_workload


def record(task_id=0, proc=0, size=100.0, dispatch=0.0, start=1.0, end=4.0, arrival=0.0):
    return TaskRecord(
        task_id=task_id,
        proc_id=proc,
        size_mflops=size,
        arrival_time=arrival,
        assigned_time=arrival,
        dispatch_time=dispatch,
        exec_start=start,
        exec_end=end,
    )


@pytest.fixture
def simple_trace():
    trace = ExecutionTrace(2)
    trace.add(record(task_id=0, proc=0, dispatch=0.0, start=1.0, end=5.0))
    trace.add(record(task_id=1, proc=1, dispatch=0.0, start=0.5, end=10.0))
    return trace


class TestRenderGantt:
    def test_contains_one_row_per_processor(self, simple_trace):
        text = render_gantt(simple_trace, width=40)
        assert "P0" in text and "P1" in text

    def test_row_width_respected(self, simple_trace):
        text = render_gantt(simple_trace, width=30, show_legend=False)
        rows = [line for line in text.splitlines() if line.startswith("P")]
        for row in rows:
            inner = row.split("|")[1]
            assert len(inner) == 30

    def test_execution_marks_present(self, simple_trace):
        text = render_gantt(simple_trace, width=40)
        assert "#" in text

    def test_idle_marks_for_short_task(self, simple_trace):
        text = render_gantt(simple_trace, width=40, show_legend=False)
        p0_row = next(line for line in text.splitlines() if line.startswith("P0"))
        assert "." in p0_row  # P0 is idle for half the makespan

    def test_legend_toggle(self, simple_trace):
        assert "legend" in render_gantt(simple_trace)
        assert "legend" not in render_gantt(simple_trace, show_legend=False)

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            render_gantt(ExecutionTrace(1))

    def test_invalid_width_rejected(self, simple_trace):
        with pytest.raises(ConfigurationError):
            render_gantt(simple_trace, width=0)

    def test_renders_real_simulation(self, small_cluster, small_tasks):
        result = simulate_schedule(EarliestFirstScheduler(), small_cluster, small_tasks, rng=0)
        text = render_gantt(result.trace, width=60)
        assert text.count("\n") >= small_cluster.n_processors


class TestUtilisationSparkline:
    def test_one_char_per_processor(self, simple_trace):
        line = utilisation_sparkline(simple_trace)
        assert len(line) == 2

    def test_busier_processor_denser(self, simple_trace):
        levels = " .:-=+*#%@"
        line = utilisation_sparkline(simple_trace, levels=levels)
        assert levels.index(line[1]) > levels.index(line[0])

    def test_invalid_levels(self, simple_trace):
        with pytest.raises(ConfigurationError):
            utilisation_sparkline(simple_trace, levels="x")


class TestValidateTrace:
    def test_clean_trace_passes(self, simple_trace):
        report = validate_trace(simple_trace)
        assert report.ok
        assert report.checks_run >= 3

    def test_duplicate_task_detected(self):
        trace = ExecutionTrace(1)
        trace.add(record(task_id=0, start=1.0, end=2.0))
        trace.add(record(task_id=0, start=3.0, end=4.0, dispatch=2.5))
        report = validate_trace(trace)
        assert not report.ok
        assert any(issue.code == "duplicate-task" for issue in report.issues)

    def test_overlap_detected(self):
        trace = ExecutionTrace(1)
        trace.add(record(task_id=0, start=1.0, end=5.0))
        trace.add(record(task_id=1, start=3.0, end=6.0, dispatch=2.0))
        report = validate_trace(trace)
        assert any(issue.code == "overlap" for issue in report.issues)

    def test_missing_task_detected(self):
        trace = ExecutionTrace(1)
        trace.add(record(task_id=0, size=10.0))
        tasks = TaskSet([Task(0, 10.0), Task(1, 20.0)])
        report = validate_trace(trace, tasks)
        assert any(issue.code == "missing-task" for issue in report.issues)

    def test_size_mismatch_detected(self):
        trace = ExecutionTrace(1)
        trace.add(record(task_id=0, size=999.0))
        report = validate_trace(trace, TaskSet([Task(0, 10.0)]))
        assert any(issue.code == "size-mismatch" for issue in report.issues)

    def test_summary_strings(self, simple_trace):
        report = validate_trace(simple_trace)
        assert "OK" in report.summary()


class TestValidateSimulation:
    def test_real_simulation_is_valid(self):
        cluster = homogeneous_cluster(3, rate_mflops=100.0, mean_comm_cost=0.5)
        tasks = generate_workload(WorkloadSpec(n_tasks=30, sizes=UniformSizes(10, 300)), rng=0)
        result = simulate_schedule(EarliestFirstScheduler(), cluster, tasks, rng=1)
        report = validate_simulation(result, tasks)
        assert report.ok, [str(i) for i in report.issues]

    def test_every_builtin_scheduler_produces_valid_schedules(self, small_cluster, small_tasks):
        from repro.schedulers import make_scheduler, ALL_SCHEDULER_NAMES

        for name in ALL_SCHEDULER_NAMES:
            scheduler = make_scheduler(
                name, n_processors=small_cluster.n_processors, batch_size=6, max_generations=5
            )
            result = simulate_schedule(scheduler, small_cluster, small_tasks, rng=3)
            report = validate_simulation(result, small_tasks)
            assert report.ok, (name, [str(i) for i in report.issues])
