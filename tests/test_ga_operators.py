"""Tests for selection, crossover and mutation operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga import (
    BatchProblem,
    CycleCrossover,
    OrderCrossover,
    PartiallyMappedCrossover,
    RankSelection,
    RouletteWheelSelection,
    TournamentSelection,
    completion_times,
    crossover_from_name,
    evaluate_assignments,
    find_cycles,
    random_chromosome,
    rebalance_assignment,
    rebalance_many,
    roulette_probabilities,
    selection_from_name,
    swap_mutation,
    validate_chromosome,
)
from repro.util.errors import ConfigurationError, EncodingError


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------

class TestRouletteProbabilities:
    def test_proportional_to_fitness(self):
        probs = roulette_probabilities(np.array([1.0, 3.0]))
        assert probs == pytest.approx([0.25, 0.75])
        assert probs.sum() == pytest.approx(1.0)

    def test_all_zero_falls_back_to_uniform(self):
        probs = roulette_probabilities(np.zeros(4))
        assert probs == pytest.approx([0.25] * 4)

    def test_non_finite_entries_ignored(self):
        probs = roulette_probabilities(np.array([np.inf, 1.0]))
        assert probs == pytest.approx([0.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            roulette_probabilities(np.array([]))


class TestSelectionOperators:
    def test_roulette_prefers_fitter_individuals(self):
        fitness = np.array([0.01, 0.01, 10.0, 0.01])
        selected = RouletteWheelSelection().select(fitness, 2000, rng=0)
        counts = np.bincount(selected, minlength=4)
        assert counts[2] > 0.8 * 2000

    def test_roulette_returns_requested_count(self):
        out = RouletteWheelSelection().select(np.ones(5), 13, rng=0)
        assert out.shape == (13,)
        assert np.all((out >= 0) & (out < 5))

    def test_roulette_deterministic_with_seed(self):
        fitness = np.array([1.0, 2.0, 3.0])
        a = RouletteWheelSelection().select(fitness, 10, rng=9)
        b = RouletteWheelSelection().select(fitness, 10, rng=9)
        assert np.array_equal(a, b)

    def test_tournament_prefers_fitter(self):
        fitness = np.array([0.1, 5.0, 0.2])
        selected = TournamentSelection(tournament_size=3).select(fitness, 600, rng=0)
        counts = np.bincount(selected, minlength=3)
        # contenders are drawn with replacement, so the best does not win every
        # tournament, but it must dominate clearly
        assert counts[1] > counts[0] and counts[1] > counts[2]
        assert counts[1] > 0.55 * 600

    def test_tournament_size_validation(self):
        with pytest.raises(ConfigurationError):
            TournamentSelection(tournament_size=0)

    def test_rank_selection_insensitive_to_scale(self):
        small = RankSelection().select(np.array([1.0, 2.0, 3.0]), 3000, rng=0)
        large = RankSelection().select(np.array([10.0, 20.0, 30.0]), 3000, rng=0)
        assert np.allclose(
            np.bincount(small, minlength=3) / 3000,
            np.bincount(large, minlength=3) / 3000,
            atol=0.05,
        )

    def test_factory(self):
        assert isinstance(selection_from_name("roulette"), RouletteWheelSelection)
        assert isinstance(selection_from_name("tournament"), TournamentSelection)
        assert isinstance(selection_from_name("rank"), RankSelection)
        with pytest.raises(ConfigurationError):
            selection_from_name("lottery")


# ---------------------------------------------------------------------------
# Crossover
# ---------------------------------------------------------------------------

def _random_parents(n_tasks, n_procs, seed):
    a = random_chromosome(n_tasks, n_procs, rng=seed)
    b = random_chromosome(n_tasks, n_procs, rng=seed + 1000)
    return a, b


class TestFindCycles:
    def test_identical_parents_give_singleton_cycles(self):
        a = np.array([3, 1, 2])
        cycles = find_cycles(a, a.copy())
        assert sorted(len(c) for c in cycles) == [1, 1, 1]

    def test_cycles_partition_positions(self):
        a, b = _random_parents(10, 3, 0)
        cycles = find_cycles(a, b)
        positions = sorted(p for c in cycles for p in c)
        assert positions == list(range(len(a)))

    def test_mismatched_parents_rejected(self):
        with pytest.raises(EncodingError):
            find_cycles(np.array([0, 1]), np.array([0, 2]))


class TestCycleCrossover:
    def test_children_are_valid_permutations(self):
        a, b = _random_parents(12, 4, 1)
        c1, c2 = CycleCrossover().cross(a, b, rng=0)
        validate_chromosome(c1, 12, 4)
        validate_chromosome(c2, 12, 4)

    def test_every_gene_comes_from_a_parent_at_same_position(self):
        a, b = _random_parents(15, 3, 2)
        c1, c2 = CycleCrossover().cross(a, b, rng=0)
        for i in range(len(a)):
            assert c1[i] in (a[i], b[i])
            assert c2[i] in (a[i], b[i])

    def test_identical_parents_reproduce_themselves(self):
        a = random_chromosome(10, 3, rng=3)
        c1, c2 = CycleCrossover().cross(a, a.copy(), rng=0)
        assert np.array_equal(c1, a) and np.array_equal(c2, a)

    def test_children_complementary(self):
        a, b = _random_parents(10, 2, 4)
        c1, c2 = CycleCrossover().cross(a, b, rng=0)
        # positions taken from parent A in child1 are taken from parent B in child2
        for i in range(len(a)):
            if c1[i] == a[i]:
                assert c2[i] == b[i]


class TestOtherCrossovers:
    @pytest.mark.parametrize("operator", [PartiallyMappedCrossover(), OrderCrossover()])
    def test_children_valid(self, operator):
        a, b = _random_parents(14, 4, 5)
        c1, c2 = operator.cross(a, b, rng=0)
        validate_chromosome(c1, 14, 4)
        validate_chromosome(c2, 14, 4)

    @pytest.mark.parametrize("operator", [PartiallyMappedCrossover(), OrderCrossover()])
    def test_tiny_parents_handled(self, operator):
        a = np.array([0])
        b = np.array([0])
        c1, c2 = operator.cross(a, b, rng=0)
        assert np.array_equal(c1, a) and np.array_equal(c2, b)

    def test_factory(self):
        assert isinstance(crossover_from_name("cycle"), CycleCrossover)
        assert isinstance(crossover_from_name("pmx"), PartiallyMappedCrossover)
        assert isinstance(crossover_from_name("order"), OrderCrossover)
        with pytest.raises(ConfigurationError):
            crossover_from_name("uniform")

    @given(
        n_tasks=st.integers(min_value=2, max_value=25),
        n_procs=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2000),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_operators_preserve_symbol_set(self, n_tasks, n_procs, seed):
        """Property: crossover children are always permutations of the parents' symbols."""
        a, b = _random_parents(n_tasks, n_procs, seed)
        for operator in (CycleCrossover(), PartiallyMappedCrossover(), OrderCrossover()):
            c1, c2 = operator.cross(a, b, rng=seed)
            assert np.array_equal(np.sort(c1), np.sort(a))
            assert np.array_equal(np.sort(c2), np.sort(a))

    @given(
        n_tasks=st.integers(min_value=2, max_value=30),
        n_procs=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=5000),
    )
    @settings(max_examples=80, deadline=None)
    def test_cycle_crossover_children_always_valid_chromosomes(self, n_tasks, n_procs, seed):
        """Property: CX children are valid chromosomes whose every gene sits at a
        position where one of the parents had it (the defining CX invariant)."""
        a, b = _random_parents(n_tasks, n_procs, seed)
        c1, c2 = CycleCrossover().cross(a, b, rng=seed)
        validate_chromosome(c1, n_tasks, n_procs)
        validate_chromosome(c2, n_tasks, n_procs)
        for i in range(len(a)):
            assert c1[i] in (a[i], b[i])
            assert c2[i] in (a[i], b[i])
            # complementarity: whatever child 1 took from one parent at this
            # position, child 2 took from the other
            assert {int(c1[i]), int(c2[i])} == {int(a[i]), int(b[i])}


# ---------------------------------------------------------------------------
# Mutation properties
# ---------------------------------------------------------------------------

class TestMutationProperties:
    @given(
        n_tasks=st.integers(min_value=1, max_value=30),
        n_procs=st.integers(min_value=1, max_value=8),
        n_swaps=st.integers(min_value=0, max_value=10),
        seed=st.integers(min_value=0, max_value=5000),
    )
    @settings(max_examples=80, deadline=None)
    def test_swap_mutation_preserves_gene_multiset(self, n_tasks, n_procs, n_swaps, seed):
        """Property: any number of random swaps preserves the multiset of genes,
        so the mutant is still a valid chromosome needing no repair."""
        chrom = random_chromosome(n_tasks, n_procs, rng=seed)
        mutated = swap_mutation(chrom, rng=seed + 1, n_swaps=n_swaps)
        assert np.array_equal(np.sort(mutated), np.sort(chrom))
        validate_chromosome(mutated, n_tasks, n_procs)

    @given(
        n_tasks=st.integers(min_value=2, max_value=40),
        n_procs=st.integers(min_value=2, max_value=8),
        n_rebalances=st.integers(min_value=0, max_value=25),
        seed=st.integers(min_value=0, max_value=5000),
    )
    @settings(max_examples=60, deadline=None)
    def test_rebalance_many_never_increases_error(self, n_tasks, n_procs, n_rebalances, seed):
        """Property: the re-balancing heuristic only accepts error-reducing swaps,
        so chaining any number of re-balances never worsens the schedule."""
        rng = np.random.default_rng(seed)
        problem = BatchProblem(
            task_ids=np.arange(n_tasks),
            sizes=rng.uniform(1.0, 1000.0, n_tasks),
            rates=rng.uniform(10.0, 500.0, n_procs),
            pending_loads=rng.uniform(0.0, 500.0, n_procs),
            comm_costs=rng.uniform(0.0, 2.0, n_procs),
        )
        assignment = rng.integers(0, n_procs, size=n_tasks)
        completions = completion_times(assignment, problem)[0]
        outcome = rebalance_many(
            assignment, completions, problem, n_rebalances=n_rebalances, rng=seed + 7
        )
        before = evaluate_assignments(assignment, problem).errors[0]
        after = evaluate_assignments(outcome.assignment, problem).errors[0]
        assert after <= before + 1e-9
        # the swap only exchanges processors between two tasks, so per-processor
        # task counts are preserved and the cached completions stay consistent
        assert np.array_equal(
            np.bincount(outcome.assignment, minlength=n_procs),
            np.bincount(assignment, minlength=n_procs),
        )
        assert np.allclose(
            outcome.completions, completion_times(outcome.assignment, problem)[0]
        )


# ---------------------------------------------------------------------------
# Mutation
# ---------------------------------------------------------------------------

class TestSwapMutation:
    def test_result_is_permutation_of_input(self):
        chrom = random_chromosome(10, 3, rng=0)
        mutated = swap_mutation(chrom, rng=1)
        assert np.array_equal(np.sort(mutated), np.sort(chrom))

    def test_exactly_two_positions_change_for_single_swap(self):
        chrom = random_chromosome(10, 3, rng=0)
        mutated = swap_mutation(chrom, rng=1, n_swaps=1)
        assert int(np.sum(mutated != chrom)) == 2

    def test_original_not_modified(self):
        chrom = random_chromosome(10, 3, rng=0)
        original = chrom.copy()
        swap_mutation(chrom, rng=1)
        assert np.array_equal(chrom, original)

    def test_zero_swaps_is_identity(self):
        chrom = random_chromosome(5, 2, rng=0)
        assert np.array_equal(swap_mutation(chrom, rng=0, n_swaps=0), chrom)

    def test_single_gene_chromosome(self):
        assert np.array_equal(swap_mutation(np.array([0]), rng=0), np.array([0]))


def _rebalance_problem():
    return BatchProblem(
        task_ids=np.arange(6),
        sizes=np.array([500.0, 400.0, 300.0, 10.0, 20.0, 30.0]),
        rates=np.array([10.0, 10.0]),
        pending_loads=np.zeros(2),
        comm_costs=np.zeros(2),
    )


class TestRebalance:
    def test_improves_unbalanced_schedule(self):
        problem = _rebalance_problem()
        # all large tasks on processor 0, all tiny tasks on processor 1
        assignment = np.array([0, 0, 0, 1, 1, 1])
        completions = completion_times(assignment, problem)[0]
        outcome = rebalance_assignment(assignment, completions, problem, rng=0)
        if outcome.improved:
            before = evaluate_assignments(assignment, problem).errors[0]
            after = evaluate_assignments(outcome.assignment, problem).errors[0]
            assert after < before

    def test_many_rebalances_never_worse(self):
        problem = _rebalance_problem()
        assignment = np.array([0, 0, 0, 1, 1, 1])
        completions = completion_times(assignment, problem)[0]
        outcome = rebalance_many(assignment, completions, problem, n_rebalances=20, rng=0)
        before = evaluate_assignments(assignment, problem).errors[0]
        after = evaluate_assignments(outcome.assignment, problem).errors[0]
        assert after <= before + 1e-9

    def test_completions_consistent_after_rebalance(self):
        problem = _rebalance_problem()
        assignment = np.array([0, 0, 0, 1, 1, 1])
        completions = completion_times(assignment, problem)[0]
        outcome = rebalance_many(assignment, completions, problem, n_rebalances=10, rng=3)
        recomputed = completion_times(outcome.assignment, problem)[0]
        assert np.allclose(outcome.completions, recomputed)

    def test_balanced_schedule_unchanged(self):
        problem = BatchProblem(
            task_ids=np.arange(4),
            sizes=np.array([100.0, 100.0, 100.0, 100.0]),
            rates=np.array([10.0, 10.0]),
            pending_loads=np.zeros(2),
            comm_costs=np.zeros(2),
        )
        assignment = np.array([0, 0, 1, 1])
        completions = completion_times(assignment, problem)[0]
        outcome = rebalance_assignment(assignment, completions, problem, rng=0)
        assert not outcome.improved
        assert np.array_equal(outcome.assignment, assignment)

    def test_single_processor_is_noop(self):
        problem = BatchProblem(
            task_ids=np.arange(3),
            sizes=np.array([1.0, 2.0, 3.0]),
            rates=np.array([1.0]),
            pending_loads=np.zeros(1),
            comm_costs=np.zeros(1),
        )
        assignment = np.zeros(3, dtype=int)
        completions = completion_times(assignment, problem)[0]
        outcome = rebalance_assignment(assignment, completions, problem, rng=0)
        assert not outcome.improved

    def test_original_arrays_not_modified(self):
        problem = _rebalance_problem()
        assignment = np.array([0, 0, 0, 1, 1, 1])
        completions = completion_times(assignment, problem)[0]
        assignment_copy = assignment.copy()
        completions_copy = completions.copy()
        rebalance_many(assignment, completions, problem, n_rebalances=5, rng=0)
        assert np.array_equal(assignment, assignment_copy)
        assert np.allclose(completions, completions_copy)

    def test_swap_moves_smaller_task_onto_heavy_processor(self):
        problem = _rebalance_problem()
        assignment = np.array([0, 0, 0, 1, 1, 1])
        completions = completion_times(assignment, problem)[0]
        outcome = rebalance_assignment(assignment, completions, problem, rng=0, max_probes=6)
        if outcome.improved:
            moved_off, moved_on = outcome.swapped
            assert problem.sizes[moved_on] < problem.sizes[moved_off]
