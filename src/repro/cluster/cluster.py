"""Cluster: the set of processors plus the star network connecting them."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..util.errors import ConfigurationError
from ..util.validation import require_non_negative
from .network import CommLink, Network
from .processor import Processor

__all__ = ["Cluster"]


class Cluster:
    """A heterogeneous distributed system as seen by the scheduler.

    A cluster couples an ordered list of :class:`Processor` objects with a
    :class:`Network` holding one link per processor.  Processor ids must be
    the consecutive integers ``0 .. M-1`` — schedulers and the GA encoding
    index processors positionally.
    """

    def __init__(self, processors: Sequence[Processor], network: Optional[Network] = None):
        if not processors:
            raise ConfigurationError("a cluster requires at least one processor")
        ids = [p.proc_id for p in processors]
        expected = list(range(len(processors)))
        if sorted(ids) != expected:
            raise ConfigurationError(
                f"processor ids must be exactly 0..{len(processors) - 1}, got {sorted(ids)}"
            )
        self._processors: List[Processor] = sorted(processors, key=lambda p: p.proc_id)
        if network is None:
            network = Network(
                [CommLink(proc_id=p.proc_id, mean_cost=0.0) for p in self._processors]
            )
        if sorted(network.proc_ids) != expected:
            raise ConfigurationError("network must have exactly one link per processor")
        self._network = network

    # -- container protocol ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._processors)

    def __iter__(self) -> Iterator[Processor]:
        return iter(self._processors)

    def __getitem__(self, proc_id: int) -> Processor:
        return self._processors[proc_id]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cluster(n_processors={len(self)}, total_peak={self.total_peak_rate():.4g} Mflop/s)"

    # -- accessors ---------------------------------------------------------------------
    @property
    def processors(self) -> List[Processor]:
        """Processors ordered by id."""
        return list(self._processors)

    @property
    def network(self) -> Network:
        """The star network connecting the scheduler to every processor."""
        return self._network

    @property
    def n_processors(self) -> int:
        """Number of processors in the cluster."""
        return len(self._processors)

    def peak_rates(self) -> np.ndarray:
        """Peak Mflop/s of each processor, ordered by id."""
        return np.array([p.peak_rate_mflops for p in self._processors], dtype=float)

    def current_rates(self, time: float = 0.0) -> np.ndarray:
        """Effective Mflop/s of each processor at *time*, ordered by id."""
        require_non_negative(time, "time")
        return np.array([p.current_rate(time) for p in self._processors], dtype=float)

    def total_peak_rate(self) -> float:
        """Aggregate peak computing power of the cluster (Mflop/s)."""
        return float(self.peak_rates().sum())

    def total_current_rate(self, time: float = 0.0) -> float:
        """Aggregate effective computing power at *time* (Mflop/s)."""
        return float(self.current_rates(time).sum())

    def heterogeneity(self) -> float:
        """Coefficient of variation of peak rates (0 for a homogeneous cluster)."""
        rates = self.peak_rates()
        mean = rates.mean()
        return float(rates.std() / mean) if mean > 0 else 0.0

    def mean_comm_cost(self, time: float = 0.0) -> float:
        """Mean of the per-link effective communication costs at *time*."""
        return self._network.overall_mean_cost(time)

    # -- derived clusters ---------------------------------------------------------------
    def with_network(self, network: Network) -> "Cluster":
        """Return a cluster with the same processors but a different network."""
        return Cluster(self._processors, network)

    def with_comm_scale(self, factor: float) -> "Cluster":
        """Return a cluster whose per-link mean comm costs are scaled by *factor*."""
        return Cluster(self._processors, self._network.scaled(factor))

    def describe(self) -> Dict[str, float]:
        """Summary statistics used by experiment reports."""
        rates = self.peak_rates()
        return {
            "n_processors": float(len(self)),
            "total_peak_mflops": float(rates.sum()),
            "min_peak_mflops": float(rates.min()),
            "max_peak_mflops": float(rates.max()),
            "heterogeneity_cv": self.heterogeneity(),
            "mean_comm_cost": self.mean_comm_cost(),
        }
