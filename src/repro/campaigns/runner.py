"""The resumable campaign runner.

A *campaign* composes figure reproductions, a scenario matrix and GA sweeps
(one :class:`~repro.campaigns.spec.CampaignSpec`) into a single durable unit
of work backed by a content-addressed :class:`~repro.campaigns.store.
ResultStore`:

* :func:`expand_campaign` turns the spec into a deterministic list of
  *cells* — picklable leaf jobs with stable cache keys;
* :func:`run_campaign` computes only the cells missing from the store,
  streaming them through any :class:`~repro.parallel.ExperimentExecutor`
  (serial, process pool, or the async work-stealing pool) and
  **checkpointing the campaign manifest after every completed cell**;
* aggregates are always folded from the *stored* records in cell order, so
  a run interrupted after k of n cells and then resumed produces aggregates
  bit-identical to an uninterrupted run — and a warm-store rerun computes
  zero cells.

The manifest (``<store>/campaigns/<name>.json``) records the spec, per-cell
status and timing (wall-clock, events/sec and the scenario cells' per-phase
scheduling/dispatch/drain attribution), and the final aggregates; ``repro
campaigns status`` renders it, ``repro campaigns resume`` re-runs the spec
it carries.
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.scorecard import machine_fingerprint
from ..experiments.config import ExperimentScale
from ..experiments.figures import run_figure
from ..experiments.sweep import aggregate_sweep_outcomes, build_sweep_jobs
from ..io.results import atomic_write_json, figure_to_dict
from ..parallel.executor import ExperimentExecutor, resolve_executor
from ..parallel.jobs import GARunOutcome, run_ga_job
from ..scenarios.runner import (
    ScenarioCellBlock,
    ScenarioCellOutcome,
    ScenarioMatrixResult,
    aggregate_scenario_outcomes,
    build_scenario_cells,
    resolve_scenario_specs,
    run_scenario_cell,
    run_scenario_cell_block,
)
from ..sim.simulation import SimulationConfig
from ..telemetry import get_session, span
from ..telemetry.monitor import RunMonitor
from ..util.errors import ConfigurationError, ExperimentInterrupted
from .spec import CampaignSpec
from .store import ResultStore, cache_key

logger = logging.getLogger("repro.campaigns")

__all__ = [
    "MANIFEST_FORMAT_VERSION",
    "FigureJob",
    "CampaignCell",
    "CampaignPlan",
    "CampaignResult",
    "expand_campaign",
    "run_campaign",
    "run_campaign_cell",
    "run_campaign_unit",
    "load_manifest",
]

MANIFEST_FORMAT_VERSION = 1

#: Cache-key namespaces per cell kind.
KIND_FIGURE = "figure"
KIND_SCENARIO = "scenario_cell"
KIND_SWEEP = "ga_run"

#: Figures whose y-values are wall-clock *measurements* (fig4 plots GA
#: seconds).  Their payloads go into the manifest's machine-dependent
#: ``timing`` section, not into ``aggregates`` — aggregates must be
#: bit-identical between independent runs and measured seconds are not.
WALL_CLOCK_FIGURES = frozenset({"fig4"})


@dataclass(frozen=True)
class FigureJob:
    """One whole figure reproduction as a leaf job.

    The embedded scale is pinned to serial execution so the job runs
    self-contained inside one worker process; the cache key excludes the
    execution-routing fields anyway (see
    :data:`~repro.campaigns.store.FINGERPRINT_EXCLUDED_FIELDS`).
    """

    figure_id: str
    scale: ExperimentScale
    seed: int


@dataclass(frozen=True)
class CampaignCell:
    """One unit of campaign work: a leaf job plus its identity and key."""

    cell_id: str
    kind: str  # KIND_FIGURE | KIND_SCENARIO | KIND_SWEEP
    key: str
    job: object  # FigureJob | ScenarioCell | GARunJob


def _ga_outcome_to_payload(outcome: GARunOutcome) -> Dict:
    payload = asdict(outcome)
    payload["reduction_history"] = [float(x) for x in outcome.reduction_history]
    return payload


def _ga_outcome_from_payload(payload: Dict) -> GARunOutcome:
    data = dict(payload)
    data["reduction_history"] = np.asarray(data["reduction_history"], dtype=float)
    return GARunOutcome(**data)


def run_campaign_cell(cell: CampaignCell) -> Dict:
    """Compute one cell (worker-side); returns ``{"payload", "elapsed_seconds"}``.

    The payload is the JSON-serialisable result record the store persists:
    a figure dict, a :class:`ScenarioCellOutcome` as a dict, or a GA run
    outcome as a dict.
    """
    start = time.perf_counter()
    with span(f"cell:{cell.cell_id}", kind=cell.kind):
        if cell.kind == KIND_FIGURE:
            job: FigureJob = cell.job
            figure = run_figure(job.figure_id, scale=job.scale, seed=job.seed)
            payload = figure_to_dict(figure)
        elif cell.kind == KIND_SCENARIO:
            payload = asdict(run_scenario_cell(cell.job))
        elif cell.kind == KIND_SWEEP:
            payload = _ga_outcome_to_payload(run_ga_job(cell.job))
        else:
            raise ConfigurationError(f"unknown campaign cell kind {cell.kind!r}")
    return {"payload": payload, "elapsed_seconds": time.perf_counter() - start}


def run_campaign_unit(cells: Tuple[CampaignCell, ...]) -> List[Dict]:
    """Compute one executor unit: a single cell, or a scenario lane block.

    Under the ``batch`` sim backend the runner groups consecutive pending
    scenario cells of one (scenario, scheduler) pair into a unit and replays
    them as one batched pass; every cell still produces its own payload and
    is persisted under its own unchanged cache key, so the store, resume and
    determinism signatures cannot tell block-computed cells apart.  The
    block's wall-clock is split evenly across its cells.
    """
    if len(cells) == 1:
        return [run_campaign_cell(cells[0])]
    start = time.perf_counter()
    outcomes = run_scenario_cell_block(
        ScenarioCellBlock(cells=tuple(cell.job for cell in cells))
    )
    elapsed = (time.perf_counter() - start) / len(cells)
    return [{"payload": asdict(outcome), "elapsed_seconds": elapsed} for outcome in outcomes]


def _campaign_units(
    pending: List[CampaignCell], sim_backend: str
) -> List[Tuple[CampaignCell, ...]]:
    """Group pending cells into executor units (singletons unless batching)."""
    if sim_backend != "batch":
        return [(cell,) for cell in pending]
    from ..sim.batch import BATCH_LANE_WIDTH

    units: List[Tuple[CampaignCell, ...]] = []
    run: List[CampaignCell] = []

    def condition(cell: CampaignCell):
        return (cell.job.spec.name, cell.job.scheduler)

    for cell in pending:
        if cell.kind != KIND_SCENARIO:
            if run:
                units.append(tuple(run))
                run = []
            units.append((cell,))
            continue
        if run and (
            condition(cell) != condition(run[0]) or len(run) >= BATCH_LANE_WIDTH
        ):
            units.append(tuple(run))
            run = []
        run.append(cell)
    if run:
        units.append(tuple(run))
    return units


@dataclass
class CampaignPlan:
    """The deterministic expansion of one spec: cells plus unit metadata."""

    spec: CampaignSpec
    scale: ExperimentScale
    cells: List[CampaignCell]
    scenario_names: List[str] = field(default_factory=list)
    scenario_schedulers: List[str] = field(default_factory=list)
    scenario_repeats: int = 0
    sweep_values: Dict[str, List[object]] = field(default_factory=dict)
    sweep_repeats: Dict[str, int] = field(default_factory=dict)


def expand_campaign(spec: CampaignSpec) -> CampaignPlan:
    """Expand *spec* into its cell list (stable order, stable cache keys).

    Cell order is figures, then the scenario matrix in (scenario,
    scheduler, repeat) order, then sweeps value-major — and aggregation
    always folds in this order, which is what makes resumed and
    uninterrupted runs bit-identical.
    """
    scale = spec.experiment_scale()
    cells: List[CampaignCell] = []
    plan = CampaignPlan(spec=spec, scale=scale, cells=cells)

    worker_scale = scale.scaled(jobs=1, executor="serial")
    for figure_id in spec.figures:
        job = FigureJob(figure_id=figure_id, scale=worker_scale, seed=spec.seed)
        cells.append(
            CampaignCell(
                cell_id=f"figure:{figure_id}",
                kind=KIND_FIGURE,
                key=cache_key(KIND_FIGURE, job),
                job=job,
            )
        )

    if spec.scenarios:
        specs = resolve_scenario_specs(spec.scenarios, scale)
        n_repeats = int(spec.repeats) if spec.repeats is not None else scale.repeats
        sim_config = SimulationConfig(
            sim_backend=scale.sim_backend,
            policy_backend=scale.policy_backend,
            phase_timing=True,
        )
        scenario_cells, scheduler_union = build_scenario_cells(
            specs,
            scale=scale,
            schedulers=spec.schedulers,
            n_repeats=n_repeats,
            sim_config=sim_config,
            master_rng=np.random.default_rng(spec.seed),
        )
        plan.scenario_names = [s.name for s in specs]
        plan.scenario_schedulers = scheduler_union
        plan.scenario_repeats = n_repeats
        for scenario_cell in scenario_cells:
            cells.append(
                CampaignCell(
                    cell_id=(
                        f"scenario:{scenario_cell.spec.name}/"
                        f"{scenario_cell.scheduler}/r{scenario_cell.repeat}"
                    ),
                    kind=KIND_SCENARIO,
                    key=cache_key(KIND_SCENARIO, scenario_cell),
                    job=scenario_cell,
                )
            )

    for sweep in spec.sweeps:
        repeats = int(sweep.repeats) if sweep.repeats is not None else scale.repeats
        jobs = build_sweep_jobs(
            sweep.parameter,
            list(sweep.values),
            scale=scale,
            repeats=repeats,
            seed=spec.seed,
        )
        plan.sweep_values[sweep.parameter] = list(sweep.values)
        plan.sweep_repeats[sweep.parameter] = repeats
        for j, job in enumerate(jobs):
            value = sweep.values[j // repeats]
            repeat = j % repeats
            cells.append(
                CampaignCell(
                    cell_id=f"sweep:{sweep.parameter}={value!r}/r{repeat}",
                    kind=KIND_SWEEP,
                    key=cache_key(KIND_SWEEP, job),
                    job=job,
                )
            )

    seen: Dict[str, str] = {}
    for cell in cells:
        if cell.cell_id in seen:
            raise ConfigurationError(f"duplicate campaign cell id {cell.cell_id!r}")
        seen[cell.cell_id] = cell.key
    return plan


@dataclass
class CampaignResult:
    """Everything one ``run_campaign`` call produced (mirrors the manifest)."""

    name: str
    spec: CampaignSpec
    manifest_path: str
    total_cells: int
    computed: int
    cached: int
    interrupted: bool
    interrupt_reason: str
    executor: str
    cells: List[Dict]
    aggregates: Optional[Dict]
    timing: Dict

    @property
    def complete(self) -> bool:
        """Whether every cell of the campaign has a stored result."""
        return not self.interrupted and self.aggregates is not None


def _cell_entries(
    plan: CampaignPlan, statuses: Dict[str, str], timings: Dict[str, Dict]
) -> List[Dict]:
    entries = []
    for cell in plan.cells:
        entry = {
            "cell_id": cell.cell_id,
            "kind": cell.kind,
            "key": cell.key,
            "status": statuses[cell.cell_id],
        }
        entry.update(timings.get(cell.cell_id, {}))
        entries.append(entry)
    return entries


def _write_manifest(
    store: ResultStore,
    plan: CampaignPlan,
    statuses: Dict[str, str],
    timings: Dict[str, Dict],
    *,
    executor: str,
    interrupted: bool,
    interrupt_reason: str,
    aggregates: Optional[Dict],
    timing: Dict,
) -> str:
    done = sum(1 for s in statuses.values() if s in ("cached", "computed"))
    payload = {
        "format_version": MANIFEST_FORMAT_VERSION,
        "kind": "campaign_manifest",
        "name": plan.spec.name,
        "spec": plan.spec.to_dict(),
        "total_cells": len(plan.cells),
        "completed_cells": done,
        "computed_cells": sum(1 for s in statuses.values() if s == "computed"),
        "cached_cells": sum(1 for s in statuses.values() if s == "cached"),
        "interrupted": interrupted,
        "interrupt_reason": interrupt_reason,
        "executor": executor,
        "cells": _cell_entries(plan, statuses, timings),
        "aggregates": aggregates,
        "timing": timing,
        # The timing numbers above are only comparable across runs on the
        # same hardware; the scorecard uses this to decide what to gate.
        "machine": machine_fingerprint(),
        "updated_at": time.time(),
    }
    return atomic_write_json(payload, store.manifest_path(plan.spec.name))


def load_manifest(store: ResultStore, name: str) -> Dict:
    """Load and validate the campaign manifest for *name* from *store*."""
    path = store.manifest_path(name)
    if not os.path.exists(path):
        raise ConfigurationError(
            f"no campaign named {name!r} in store {store.root} "
            f"(known: {store.manifest_names() or 'none'})"
        )
    with open(path, "r", encoding="utf8") as handle:
        payload = json.load(handle)
    if payload.get("format_version") != MANIFEST_FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported campaign manifest version {payload.get('format_version')!r}"
        )
    return payload


def _scenario_matrix_from_store(
    plan: CampaignPlan, store: ResultStore, cache: Dict[str, Dict]
) -> Optional[ScenarioMatrixResult]:
    outcomes: List[ScenarioCellOutcome] = []
    for cell in plan.cells:
        if cell.kind != KIND_SCENARIO:
            continue
        payload = cache.get(cell.key)
        if payload is None:
            payload = store.payload(cell.key)
        outcomes.append(ScenarioCellOutcome(**payload))
    if not outcomes:
        return None
    return ScenarioMatrixResult(
        scenarios=list(plan.scenario_names),
        schedulers=list(plan.scenario_schedulers),
        repeats=plan.scenario_repeats,
        outcomes=outcomes,
        aggregates=aggregate_scenario_outcomes(outcomes),
        executor="store",
        scale_name=plan.scale.name,
    )


def _compute_aggregates(
    plan: CampaignPlan, store: ResultStore, cache: Optional[Dict[str, Dict]] = None
) -> Tuple[Dict, Dict]:
    """Fold the campaign's aggregates — always from the *stored* records.

    Both the fresh-computation path and the cache-hit path fold JSON that
    has been round-tripped through the store, so a resumed run folds
    byte-for-byte the same inputs as an uninterrupted one.  *cache* may
    carry payloads of records already read from disk this run (the warm
    scan), saving a second read; freshly computed cells are always re-read.
    Returns ``(aggregates, timing)`` with the machine-dependent numbers
    kept strictly on the ``timing`` side.
    """
    cache = cache or {}
    aggregates: Dict[str, Dict] = {}
    timing: Dict[str, Dict] = {}

    def payload_of(cell: CampaignCell) -> Dict:
        payload = cache.get(cell.key)
        return payload if payload is not None else store.payload(cell.key)

    figures = {}
    timed_figures = {}
    for cell in plan.cells:
        if cell.kind == KIND_FIGURE:
            figure_id = cell.cell_id.split(":", 1)[1]
            target = timed_figures if figure_id in WALL_CLOCK_FIGURES else figures
            target[figure_id] = payload_of(cell)
    if figures:
        aggregates["figures"] = figures
    if timed_figures:
        timing["figures"] = timed_figures

    matrix = _scenario_matrix_from_store(plan, store, cache)
    if matrix is not None:
        aggregates["scenarios"] = matrix.signature()
        timing["scenarios"] = matrix.timing()

    sweeps_agg: Dict[str, Dict] = {}
    sweeps_timing: Dict[str, Dict] = {}
    for parameter, values in plan.sweep_values.items():
        repeats = plan.sweep_repeats[parameter]
        outcomes = [
            _ga_outcome_from_payload(payload_of(cell))
            for cell in plan.cells
            if cell.kind == KIND_SWEEP
            and cell.cell_id.startswith(f"sweep:{parameter}=")
        ]
        result = aggregate_sweep_outcomes(parameter, values, repeats, outcomes)
        sweeps_agg[parameter] = {
            repr(point.value): {
                "makespan_mean": point.makespan.mean,
                "makespan_std": point.makespan.std,
                "reduction_mean": point.reduction.mean,
                "generations_mean": point.generations.mean,
            }
            for point in result.points
        }
        sweeps_timing[parameter] = {
            repr(point.value): {"wall_time_mean_seconds": point.wall_time.mean}
            for point in result.points
        }
    if sweeps_agg:
        aggregates["sweeps"] = sweeps_agg
        timing["sweeps"] = sweeps_timing
    return aggregates, timing


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    *,
    executor: Optional[ExperimentExecutor] = None,
    jobs: Optional[int] = None,
    executor_kind: Optional[str] = None,
    max_cells: Optional[int] = None,
) -> CampaignResult:
    """Run (or resume) *spec* against *store*.

    Cells whose keys are already stored are counted as ``cached`` and never
    recomputed; the rest stream through the executor in cell order, each
    result persisted to the store and the manifest checkpointed before the
    next result is consumed.  ``max_cells`` stops the run after that many
    *computed* cells (the deterministic stand-in for an interruption: CI
    kills a campaign this way and then asserts resume bit-identity);
    Ctrl-C is handled the same way, keeping every already-completed cell.

    Aggregates are only attached when every cell has a stored result, and
    are always folded from the store in cell order — see
    :func:`_compute_aggregates` for why this makes resume bit-identical.
    """
    if max_cells is not None and int(max_cells) < 1:
        raise ConfigurationError(f"max_cells must be >= 1, got {max_cells}")
    plan = expand_campaign(spec)
    scale = plan.scale
    # An executor built here is owned here: close it (releasing its worker
    # processes) before returning.  An explicitly supplied one is the
    # caller's to manage.
    owns_executor = executor is None
    executor = resolve_executor(
        executor,
        jobs if jobs is not None else scale.jobs,
        executor_kind if executor_kind is not None else scale.executor,
    )

    # A manifest written by a *different* campaign must not be silently
    # overwritten: distinct names can sanitise onto the same file.
    manifest_file = store.manifest_path(spec.name)
    if os.path.exists(manifest_file):
        with open(manifest_file, "r", encoding="utf8") as handle:
            existing_name = json.load(handle).get("name")
        if existing_name != spec.name:
            raise ConfigurationError(
                f"campaign name {spec.name!r} collides with existing manifest "
                f"{manifest_file} (campaign {existing_name!r}); pick another name"
            )

    statuses: Dict[str, str] = {}
    timings: Dict[str, Dict] = {}
    pending: List[CampaignCell] = []
    # Payloads of records read during this scan, reused at aggregation time
    # so a warm rerun parses each cached record once, not twice.
    cached_payloads: Dict[str, Dict] = {}
    for cell in plan.cells:
        if store.has(cell.key):
            statuses[cell.cell_id] = "cached"
            record = store.get_record(cell.key)
            cached_payloads[cell.key] = record["payload"]
            meta = record.get("meta", {})
            if "elapsed_seconds" in meta:
                timings[cell.cell_id] = {"elapsed_seconds": meta["elapsed_seconds"]}
        else:
            statuses[cell.cell_id] = "pending"
            pending.append(cell)

    interrupted = False
    interrupt_reason = ""
    computed = 0
    cached_count = len(plan.cells) - len(pending)
    run_start = time.perf_counter()
    logger.info(
        "campaign %s: %d cells (%d cached, %d to compute) via %s",
        spec.name,
        len(plan.cells),
        cached_count,
        len(pending),
        executor.describe(),
    )

    def progress() -> None:
        # Live progress line: throughput so far, ETA over the cells still
        # pending, and how much of the campaign the store already covered.
        elapsed = time.perf_counter() - run_start
        rate = computed / elapsed if elapsed > 0 else 0.0
        remaining = len(pending) - computed
        eta = remaining / rate if rate > 0 else float("inf")
        hit_rate = 100.0 * cached_count / len(plan.cells) if plan.cells else 0.0
        logger.info(
            "campaign %s: %d/%d computed (%.2f cells/s, eta %.0fs, cache-hit %.0f%%)",
            spec.name,
            computed,
            len(pending),
            rate,
            eta,
            hit_rate,
        )

    # The live monitor: a status sidecar of the manifest, updated on every
    # completed cell (throttled) and readable while the run is in flight by
    # ``repro campaigns watch``.  Units are computed up front so the monitor
    # can report the lane-block shape the executor will actually see.
    units = _campaign_units(pending, scale.sim_backend)
    monitor = RunMonitor(
        store.status_path(spec.name),
        name=spec.name,
        total_units=len(plan.cells),
        cached=cached_count,
        executor=executor.describe(),
        lane_widths=[len(unit) for unit in units],
    )

    def persist(cell: CampaignCell, outcome: Dict) -> None:
        nonlocal computed
        if not store.has(cell.key):  # duplicate keys: first write wins
            # The index rewrite is deferred to the end of the run (the
            # record file is durable on its own) so per-cell checkpoint
            # I/O stays linear in campaign size.
            store.put(
                cell.key,
                cell.kind,
                outcome["payload"],
                meta={
                    "cell_id": cell.cell_id,
                    "campaign": spec.name,
                    "elapsed_seconds": outcome["elapsed_seconds"],
                },
                flush_index=False,
            )
        statuses[cell.cell_id] = "computed"
        timings[cell.cell_id] = {"elapsed_seconds": outcome["elapsed_seconds"]}
        computed += 1
        monitor.cell_event(cell.cell_id, "computed", outcome["elapsed_seconds"])
        progress()

    def checkpoint(aggregates: Optional[Dict] = None, timing: Optional[Dict] = None) -> str:
        return _write_manifest(
            store,
            plan,
            statuses,
            timings,
            executor=executor.describe(),
            interrupted=interrupted,
            interrupt_reason=interrupt_reason,
            aggregates=aggregates,
            timing=timing or {},
        )

    manifest_path = checkpoint()
    # The campaign root span: every cell span — including those merged back
    # from worker processes at unwrap time — nests underneath it.
    with span(
        f"campaign:{spec.name}",
        total_cells=len(plan.cells),
        cached=cached_count,
        executor=executor.describe(),
    ):
        # Under the batch backend, consecutive same-condition scenario cells
        # form one executor unit (a lane block); otherwise every unit is a
        # single cell and the streaming behaviour is exactly the historical
        # per-cell one.  Checkpointing happens per unit.  The heartbeat
        # context is active while the executor wraps and runs the jobs, so
        # worker processes report per-job progress beside the status file.
        with monitor.heartbeats():
            stream = executor.imap(run_campaign_unit, units)
            try:
                for unit, unit_outcomes in zip(units, stream):
                    for cell, outcome in zip(unit, unit_outcomes):
                        persist(cell, outcome)
                    remaining = len(pending) - sum(
                        1 for c in pending if statuses[c.cell_id] == "computed"
                    )
                    if max_cells is not None and computed >= max_cells and remaining > 0:
                        interrupted = True
                        interrupt_reason = "max-cells"
                        manifest_path = checkpoint()
                        break
                    manifest_path = checkpoint()
            except (KeyboardInterrupt, ExperimentInterrupted) as exc:
                interrupted = True
                interrupt_reason = "keyboard-interrupt"
                if isinstance(exc, ExperimentInterrupted):
                    # The executor surfaced results that completed before the
                    # interrupt but were never consumed: keep them, they are paid for.
                    for index in sorted(exc.partial):
                        for cell, outcome in zip(units[index], exc.partial[index]):
                            if statuses[cell.cell_id] == "pending":
                                persist(cell, outcome)
                manifest_path = checkpoint()
            finally:
                # Close the stream *before* the executor: an abandoned parallel
                # stream (the --max-cells break) cancels its not-yet-started chunks
                # on GeneratorExit, so the pool shutdown below only waits for the
                # handful of jobs actually in flight instead of the whole campaign.
                closer = getattr(stream, "close", None)
                if closer is not None:
                    closer()
                if owns_executor:
                    executor.close()
                store.flush_index()

        aggregates = timing = None
        if all(status in ("cached", "computed") for status in statuses.values()):
            aggregates, timing = _compute_aggregates(plan, store, cached_payloads)
            interrupted = False
            interrupt_reason = ""
            manifest_path = checkpoint(aggregates, timing)
    monitor.finish("interrupted" if interrupted else "finished", interrupt_reason)
    session = get_session()
    if session is not None:
        session.metrics.counter("campaign.cells_computed").inc(computed)
        session.metrics.counter("campaign.cells_cached").inc(cached_count)
    cached = sum(1 for s in statuses.values() if s == "cached")
    return CampaignResult(
        name=spec.name,
        spec=spec,
        manifest_path=manifest_path,
        total_cells=len(plan.cells),
        computed=computed,
        cached=cached,
        interrupted=interrupted,
        interrupt_reason=interrupt_reason,
        executor=executor.describe(),
        cells=_cell_entries(plan, statuses, timings),
        aggregates=aggregates,
        timing=timing or {},
    )
