"""Tests for population seeding and the GA engine."""

import numpy as np
import pytest

from repro.ga import (
    BatchProblem,
    GAConfig,
    GAResult,
    GAStopReason,
    GeneticAlgorithm,
    evaluate_assignments,
    decode_assignment,
    list_scheduled_assignment,
    random_population,
    seeded_individual,
    seeded_population,
    validate_chromosome,
)
from repro.util.errors import ConfigurationError


class TestListScheduledAssignment:
    def test_fully_greedy_is_well_balanced(self, small_problem):
        assignment = list_scheduled_assignment(small_problem, random_fraction=0.0, rng=0)
        result = evaluate_assignments(assignment, small_problem)
        random_assignment = np.random.default_rng(0).integers(
            0, small_problem.n_processors, small_problem.n_tasks
        )
        random_result = evaluate_assignments(random_assignment, small_problem)
        assert result.makespans[0] <= random_result.makespans[0]

    def test_every_task_assigned(self, small_problem):
        assignment = list_scheduled_assignment(small_problem, 0.5, rng=1)
        assert assignment.shape == (small_problem.n_tasks,)
        assert assignment.min() >= 0 and assignment.max() < small_problem.n_processors

    def test_fully_random_uses_all_processors_eventually(self, small_problem):
        seen = set()
        for seed in range(10):
            seen.update(list_scheduled_assignment(small_problem, 1.0, rng=seed).tolist())
        assert seen == set(range(small_problem.n_processors))

    def test_invalid_fraction_rejected(self, small_problem):
        with pytest.raises(ConfigurationError):
            list_scheduled_assignment(small_problem, 1.5, rng=0)


class TestPopulations:
    def test_seeded_individual_is_valid(self, small_problem):
        chrom = seeded_individual(small_problem, 0.5, rng=0)
        validate_chromosome(chrom, small_problem.n_tasks, small_problem.n_processors)

    def test_seeded_population_shape(self, small_problem):
        pop = seeded_population(small_problem, 10, rng=0)
        assert pop.shape == (10, small_problem.n_tasks + small_problem.n_processors - 1)
        for chrom in pop:
            validate_chromosome(chrom, small_problem.n_tasks, small_problem.n_processors)

    def test_seeded_population_diverse(self, small_problem):
        pop = seeded_population(small_problem, 10, rng=0)
        assert len({tuple(c) for c in pop}) > 1

    def test_seeded_better_than_random_on_average(self, small_problem):
        seeded = seeded_population(small_problem, 12, random_fraction=0.3, rng=0)
        random_pop = random_population(small_problem, 12, rng=0)

        def mean_makespan(pop):
            assignments = np.vstack(
                [
                    decode_assignment(c, small_problem.n_tasks, small_problem.n_processors)
                    for c in pop
                ]
            )
            return evaluate_assignments(assignments, small_problem).makespans.mean()

        assert mean_makespan(seeded) < mean_makespan(random_pop)

    def test_random_population_valid(self, small_problem):
        pop = random_population(small_problem, 6, rng=0)
        for chrom in pop:
            validate_chromosome(chrom, small_problem.n_tasks, small_problem.n_processors)

    def test_population_size_validation(self, small_problem):
        with pytest.raises(ConfigurationError):
            seeded_population(small_problem, 0, rng=0)


class TestGAConfig:
    def test_defaults_follow_paper(self):
        cfg = GAConfig()
        assert cfg.population_size == 20
        assert cfg.max_generations == 1000
        assert cfg.n_rebalances == 1
        assert cfg.rebalance_probes == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(population_size=1),
            dict(crossover_rate=1.5),
            dict(mutation_rate=-0.1),
            dict(n_rebalances=-1),
            dict(elitism=20, population_size=20),
            dict(max_generations=0),
            dict(target_makespan=-1.0),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            GAConfig(**kwargs)

    def test_operator_construction(self):
        cfg = GAConfig(selection="tournament", crossover="pmx")
        assert cfg.selection_operator().name == "tournament"
        assert cfg.crossover_operator().name == "pmx"


def quick_config(**overrides):
    defaults = dict(population_size=10, max_generations=15, n_rebalances=1)
    defaults.update(overrides)
    return GAConfig(**defaults)


class TestGeneticAlgorithm:
    def test_returns_valid_schedule(self, small_problem):
        result = GeneticAlgorithm(quick_config(), rng=0).evolve(small_problem)
        assert isinstance(result, GAResult)
        assert result.best_assignment.shape == (small_problem.n_tasks,)
        # every task id appears exactly once across the queues
        all_ids = sorted(tid for queue in result.best_queues for tid in queue)
        assert all_ids == sorted(small_problem.task_ids.tolist())

    def test_best_makespan_matches_assignment(self, small_problem):
        result = GeneticAlgorithm(quick_config(), rng=0).evolve(small_problem)
        recomputed = evaluate_assignments(result.best_assignment, small_problem)
        assert result.best_makespan == pytest.approx(recomputed.makespans[0])

    def test_history_is_monotone_non_increasing(self, small_problem):
        result = GeneticAlgorithm(quick_config(max_generations=25), rng=0).evolve(small_problem)
        history = np.asarray(result.makespan_history)
        assert np.all(np.diff(history) <= 1e-9)

    def test_deterministic_given_seed(self, small_problem):
        a = GeneticAlgorithm(quick_config(), rng=42).evolve(small_problem)
        b = GeneticAlgorithm(quick_config(), rng=42).evolve(small_problem)
        assert a.best_makespan == pytest.approx(b.best_makespan)
        assert np.array_equal(a.best_assignment, b.best_assignment)

    def test_stops_at_max_generations(self, small_problem):
        result = GeneticAlgorithm(quick_config(max_generations=7), rng=0).evolve(small_problem)
        assert result.generations == 7
        assert result.stop_reason is GAStopReason.MAX_GENERATIONS

    def test_target_makespan_stops_early(self, small_problem):
        result = GeneticAlgorithm(
            quick_config(target_makespan=1e9, max_generations=50), rng=0
        ).evolve(small_problem)
        assert result.generations == 1
        assert result.stop_reason is GAStopReason.TARGET_MAKESPAN

    def test_external_stop_callback(self, small_problem):
        result = GeneticAlgorithm(quick_config(max_generations=100), rng=0).evolve(
            small_problem, stop_callback=lambda gen, elapsed: gen >= 3
        )
        assert result.generations == 3
        assert result.stop_reason is GAStopReason.EXTERNAL_STOP

    def test_time_limit_stops(self, small_problem):
        result = GeneticAlgorithm(
            quick_config(max_generations=10_000, time_limit_seconds=0.05), rng=0
        ).evolve(small_problem)
        assert result.stop_reason is GAStopReason.TIME_LIMIT
        assert result.wall_time_seconds >= 0.05

    def test_ga_improves_over_random_initialisation(self, small_problem):
        config = quick_config(
            max_generations=40, seeded_initialisation=True, random_init_fraction=1.0
        )
        result = GeneticAlgorithm(config, rng=1).evolve(small_problem)
        assert result.best_makespan <= result.initial_best_makespan
        assert 0.0 <= result.reduction_fraction <= 1.0

    def test_rebalancing_helps_or_matches_pure_ga(self, small_problem):
        pure = GeneticAlgorithm(
            quick_config(n_rebalances=0, max_generations=30, random_init_fraction=1.0), rng=3
        ).evolve(small_problem)
        rebalanced = GeneticAlgorithm(
            quick_config(n_rebalances=1, max_generations=30, random_init_fraction=1.0), rng=3
        ).evolve(small_problem)
        assert rebalanced.best_makespan <= pure.best_makespan * 1.05

    def test_zero_elitism_allowed(self, small_problem):
        result = GeneticAlgorithm(quick_config(elitism=0), rng=0).evolve(small_problem)
        assert result.best_makespan > 0

    def test_reduction_history_shape(self, small_problem):
        result = GeneticAlgorithm(quick_config(max_generations=12), rng=0).evolve(small_problem)
        history = result.reduction_history()
        assert history.shape == (12,)
        assert np.all(history >= -1e-9)

    def test_timings_recorded(self, small_problem):
        result = GeneticAlgorithm(quick_config(), rng=0).evolve(small_problem)
        assert result.timings.total("fitness") > 0
        assert result.timings.total("selection") > 0

    def test_single_processor_problem(self):
        problem = BatchProblem(
            task_ids=np.arange(5),
            sizes=np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
            rates=np.array([10.0]),
            pending_loads=np.zeros(1),
            comm_costs=np.zeros(1),
        )
        result = GeneticAlgorithm(quick_config(max_generations=5), rng=0).evolve(problem)
        assert result.best_makespan == pytest.approx(15.0)

    def test_single_task_problem(self, small_cluster):
        problem = BatchProblem(
            task_ids=np.array([0]),
            sizes=np.array([100.0]),
            rates=small_cluster.current_rates(0.0),
            pending_loads=np.zeros(4),
            comm_costs=np.zeros(4),
        )
        result = GeneticAlgorithm(quick_config(max_generations=5), rng=0).evolve(problem)
        assert result.best_makespan > 0
        assert sum(len(q) for q in result.best_queues) == 1
