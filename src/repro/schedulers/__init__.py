"""Scheduling policies: the paper's six baselines plus shared interfaces.

The paper's own scheduler (PN) lives in :mod:`repro.core`; it shares the
:class:`~repro.schedulers.base.Scheduler` interface defined here so the
simulator and experiment harness treat all seven policies uniformly.
"""

from .base import (
    BatchScheduler,
    ImmediateScheduler,
    ScheduleAssignment,
    Scheduler,
    SchedulerMode,
    SchedulingContext,
)
from .earliest_first import EarliestFirstScheduler
from .kernels import (
    POLICY_BACKEND_NAMES,
    LoopPolicyBackend,
    PolicyKernelBackend,
    VectorizedPolicyBackend,
    default_policy_backend,
    policy_backend_from_name,
)
from .extended import (
    EXTENDED_SCHEDULER_NAMES,
    MinimumExecutionTimeScheduler,
    OpportunisticLoadBalancingScheduler,
    SufferageScheduler,
)
from .lightest_loaded import LightestLoadedScheduler
from .max_min import MaxMinScheduler
from .min_min import MinMinScheduler
from .registry import (
    ALL_SCHEDULER_NAMES,
    BATCH_SCHEDULER_NAMES,
    IMMEDIATE_SCHEDULER_NAMES,
    make_all_schedulers,
    make_scheduler,
)
from .round_robin import RoundRobinScheduler
from .zomaya import ZomayaScheduler, default_zomaya_ga_config

__all__ = [
    "Scheduler",
    "SchedulerMode",
    "SchedulingContext",
    "ScheduleAssignment",
    "ImmediateScheduler",
    "BatchScheduler",
    "EarliestFirstScheduler",
    "LightestLoadedScheduler",
    "RoundRobinScheduler",
    "MinMinScheduler",
    "MaxMinScheduler",
    "ZomayaScheduler",
    "default_zomaya_ga_config",
    "MinimumExecutionTimeScheduler",
    "OpportunisticLoadBalancingScheduler",
    "SufferageScheduler",
    "EXTENDED_SCHEDULER_NAMES",
    "ALL_SCHEDULER_NAMES",
    "IMMEDIATE_SCHEDULER_NAMES",
    "BATCH_SCHEDULER_NAMES",
    "make_scheduler",
    "make_all_schedulers",
    "POLICY_BACKEND_NAMES",
    "PolicyKernelBackend",
    "LoopPolicyBackend",
    "VectorizedPolicyBackend",
    "policy_backend_from_name",
    "default_policy_backend",
]
