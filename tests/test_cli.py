"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.config import SCALES


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_figure_commands_exist(self):
        parser = build_parser()
        for figure_id in [f"fig{i}" for i in range(3, 12)]:
            args = parser.parse_args([figure_id, "--scale", "smoke", "--seed", "1"])
            assert args.command == figure_id
            assert args.scale == "smoke"
            assert args.seed == 1

    def test_compare_command_options(self):
        args = build_parser().parse_args(
            ["compare", "--workload", "poisson_small", "--comm-cost", "3.5", "--tasks", "40"]
        )
        assert args.workload == "poisson_small"
        assert args.comm_cost == 3.5
        assert args.tasks == 40

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--scale", "enormous"])

    def test_sim_backend_option_parses(self):
        args = build_parser().parse_args(["fig5", "--sim-backend", "event"])
        assert args.sim_backend == "event"
        args = build_parser().parse_args(["compare", "--sim-backend", "fast"])
        assert args.sim_backend == "fast"

    def test_invalid_sim_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--sim-backend", "warp"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        for scale in SCALES:
            assert scale in out

    def test_compare_smoke(self, capsys):
        code = main(
            [
                "compare",
                "--scale",
                "smoke",
                "--seed",
                "1",
                "--workload",
                "uniform_narrow",
                "--comm-cost",
                "2.0",
                "--tasks",
                "25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PN" in out and "makespan_mean" in out

    def test_compare_backends_print_identical_tables(self, capsys):
        outputs = {}
        for backend in ("event", "fast"):
            code = main(
                [
                    "compare",
                    "--scale",
                    "smoke",
                    "--seed",
                    "1",
                    "--workload",
                    "uniform_narrow",
                    "--comm-cost",
                    "2.0",
                    "--tasks",
                    "20",
                    "--sim-backend",
                    backend,
                ]
            )
            assert code == 0
            outputs[backend] = capsys.readouterr().out
        assert outputs["event"] == outputs["fast"]

    def test_figure4_smoke(self, capsys):
        assert main(["fig4", "--scale", "smoke", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "rebalances_per_generation" in out


class TestScenariosCLI:
    def test_scenarios_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])

    def test_scenarios_run_parses_options(self):
        args = build_parser().parse_args(
            [
                "scenarios",
                "run",
                "failure-storm",
                "elastic-scale-out",
                "--scale",
                "smoke",
                "--seed",
                "3",
                "--jobs",
                "2",
                "--repeats",
                "4",
                "--schedulers",
                "EF",
                "LL",
            ]
        )
        assert args.command == "scenarios"
        assert args.scenario_command == "run"
        assert args.names == ["failure-storm", "elastic-scale-out"]
        assert args.repeats == 4
        assert args.schedulers == ["EF", "LL"]

    def test_scenarios_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["scenarios", "run", "failure-storm", "--schedulers", "nope"]
            )

    def test_scenarios_list_smoke(self, capsys):
        assert main(["scenarios", "list", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "failure-storm" in out
        assert "elastic-scale-out" in out
        assert "load spike" in out

    def test_scenarios_run_smoke_with_output(self, capsys, tmp_path):
        output = tmp_path / "matrix.json"
        code = main(
            [
                "scenarios",
                "run",
                "failure-storm",
                "--scale",
                "smoke",
                "--seed",
                "7",
                "--repeats",
                "1",
                "--schedulers",
                "EF",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "failure-storm" in out and "conserved" in out
        assert output.exists()

    def test_scenarios_run_unknown_scenario_fails_cleanly(self, capsys):
        code = main(["scenarios", "run", "no-such-thing", "--scale", "smoke"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err
