"""Tests for the parallel experiment executors (repro.parallel).

The load-bearing guarantee is determinism: sharding repeats across worker
processes must produce aggregates bit-identical to the serial run with the
same master seed, and repeated serial runs must be bit-identical to each
other.  These are regression tests for that contract, plus unit tests of the
executor mechanics (ordering, fallback, construction).
"""


import time

import numpy as np
import pytest

from repro.experiments import (
    compare_schedulers,
    figure3,
    figure6,
    get_scale,
    run_figure,
    sweep_ga_parameter,
)
from repro.parallel import (
    AsyncWorkStealingExecutor,
    ComparisonRepeatJob,
    GARunJob,
    ParallelExecutor,
    SerialExecutor,
    executor_from_jobs,
    resolve_executor,
    run_comparison_repeat,
    run_ga_job,
)
from repro.util.errors import ConfigurationError, ExperimentInterrupted
from repro.workloads import normal_paper_workload


def _square(x):
    return x * x


def _interrupting(x):
    if x == 4:
        raise KeyboardInterrupt  # simulates Ctrl-C reaching a worker
    time.sleep(0.01)
    return x


def _touch_marker(arg):
    index, directory = arg
    with open(f"{directory}/{index}.marker", "w", encoding="utf8") as handle:
        handle.write("ran")
    time.sleep(0.02)
    return index


@pytest.fixture(scope="module")
def tiny_scale():
    return get_scale("smoke").scaled(
        n_tasks=25,
        n_tasks_large=25,
        n_processors=4,
        batch_size=10,
        max_generations=5,
        repeats=3,
        convergence_generations=6,
        comm_cost_means=(5.0, 20.0),
    )


def _comparison_key(result):
    """Everything aggregate about a ComparisonResult, as plain floats."""
    return {
        name: (
            cmp.makespan.mean,
            cmp.makespan.std,
            cmp.efficiency.mean,
            cmp.efficiency.std,
            cmp.mean_response_time.mean,
            cmp.invocations.mean,
        )
        for name, cmp in result.schedulers.items()
    }


class TestExecutors:
    def test_serial_maps_in_order(self):
        assert SerialExecutor().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_parallel_maps_in_order(self):
        assert ParallelExecutor(2).map(_square, list(range(8))) == [
            x * x for x in range(8)
        ]

    def test_parallel_single_job_runs_inline(self):
        assert ParallelExecutor(4).map(_square, [5]) == [25]

    def test_parallel_empty_job_list(self):
        assert ParallelExecutor(2).map(_square, []) == []

    def test_unpicklable_jobs_fall_back_to_serial(self):
        fn = lambda x: x + 1  # noqa: E731 - deliberately unpicklable
        executor = ParallelExecutor(2)
        with pytest.warns(RuntimeWarning, match="not picklable"):
            assert executor.map(fn, [1, 2]) == [2, 3]
        # the degradation is reflected in what results will record
        assert executor.describe() == "process[2]:serial-fallback"

    def test_serial_close_is_noop(self):
        executor = SerialExecutor()
        executor.close()
        assert executor.map(_square, [2]) == [4]

    def test_describe(self):
        assert SerialExecutor().describe() == "serial"
        assert ParallelExecutor(3).describe() == "process[3]"

    def test_pool_reused_across_map_calls_and_recreated_after_close(self):
        with ParallelExecutor(2) as executor:
            assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
            pool = executor._pool
            assert pool is not None
            assert executor.map(_square, [4, 5, 6]) == [16, 25, 36]
            assert executor._pool is pool
            executor.close()
            assert executor._pool is None
            assert executor.map(_square, [7, 8]) == [49, 64]
        assert executor._pool is None

    def test_imap_yields_in_order_for_every_executor(self):
        jobs = list(range(9))
        expected = [x * x for x in jobs]
        assert list(SerialExecutor().imap(_square, jobs)) == expected
        with ParallelExecutor(2) as executor:
            assert list(executor.imap(_square, jobs)) == expected
        with AsyncWorkStealingExecutor(2) as executor:
            assert list(executor.imap(_square, jobs)) == expected

    def test_serial_imap_is_lazy(self):
        calls = []

        def record(x):
            calls.append(x)
            return x

        stream = SerialExecutor().imap(record, [1, 2, 3])
        assert calls == []
        assert next(stream) == 1
        assert calls == [1]  # later jobs not computed until asked for

    def test_abandoned_imap_cancels_pending_chunks(self, tmp_path):
        # A consumer that stops early (campaign --max-cells) must not leave
        # the whole job list queued: close() would otherwise block until
        # every submitted chunk has run.
        jobs = [(i, str(tmp_path)) for i in range(40)]
        executor = ParallelExecutor(2)
        stream = executor.imap(_touch_marker, jobs)
        assert [next(stream) for _ in range(3)] == [0, 1, 2]
        stream.close()  # cancels the not-yet-started chunks
        executor.close()
        ran = len(list(tmp_path.glob("*.marker")))
        assert 3 <= ran < 40  # in-flight jobs may finish; the rest must not

    def test_keyboard_interrupt_terminates_pool_and_surfaces_partials(self):
        executor = ParallelExecutor(2)
        start = time.perf_counter()
        with pytest.raises(ExperimentInterrupted) as info:
            executor.map(_interrupting, list(range(10)))
        # The fix: no hang on the pool join — the map fails promptly...
        assert time.perf_counter() - start < 30.0
        # ...the worker pool is gone (a later map recreates it)...
        assert executor._pool is None
        # ...and completed results are surfaced for checkpointing.
        assert info.value.total == 10
        assert all(info.value.partial[i] == i for i in info.value.partial)
        assert executor.map(_square, [3]) == [9]
        executor.close()

    def test_executor_from_jobs(self):
        assert isinstance(executor_from_jobs(None), SerialExecutor)
        assert isinstance(executor_from_jobs(1), SerialExecutor)
        parallel = executor_from_jobs(2)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.jobs == 2
        assert isinstance(executor_from_jobs(2, "async"), AsyncWorkStealingExecutor)
        assert isinstance(executor_from_jobs(8, "serial"), SerialExecutor)
        with pytest.raises(ConfigurationError):
            executor_from_jobs(0)

    def test_resolve_executor_prefers_explicit(self):
        explicit = SerialExecutor()
        assert resolve_executor(explicit, 8) is explicit
        assert isinstance(resolve_executor(None, 2), ParallelExecutor)

    def test_invalid_parallel_construction(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(0)
        with pytest.raises(ConfigurationError):
            ParallelExecutor(2, chunksize=0)

    def test_scale_jobs_validated(self):
        with pytest.raises(Exception):
            get_scale("smoke").scaled(jobs=0)

    def test_scale_executor_validated(self):
        with pytest.raises(ConfigurationError, match="executor"):
            get_scale("smoke").scaled(executor="cluster")
        assert get_scale("smoke").scaled(executor="async").executor == "async"


class TestComparisonJobDeterminism:
    def test_repeat_job_is_self_contained(self, tiny_scale):
        """The same job run twice gives identical metrics (no hidden state)."""
        job = ComparisonRepeatJob(
            seed_entropy=99,
            workload_spec=normal_paper_workload(tiny_scale.n_tasks),
            scheduler_names=("EF", "RR"),
            n_processors=tiny_scale.n_processors,
            batch_size=tiny_scale.batch_size,
            max_generations=tiny_scale.max_generations,
            mean_comm_cost=5.0,
        )
        assert run_comparison_repeat(job).metrics == run_comparison_repeat(job).metrics

    def test_ga_job_is_self_contained(self, tiny_scale):
        from repro.experiments import make_benchmark_problem
        from repro.ga import GAConfig

        job = GARunJob(
            config=GAConfig(population_size=8, max_generations=4, n_rebalances=1),
            problem=make_benchmark_problem(tiny_scale, seed=3),
            ga_seed=17,
        )
        a, b = run_ga_job(job), run_ga_job(job)
        assert a.best_makespan == b.best_makespan
        assert np.array_equal(a.reduction_history, b.reduction_history)


class TestSerialParallelIdentity:
    """Same seed ⇒ identical aggregates whichever executor runs the repeats."""

    def test_compare_schedulers_serial_vs_parallel(self, tiny_scale):
        spec = normal_paper_workload(tiny_scale.n_tasks)
        kwargs = dict(mean_comm_cost=5.0, seed=42)
        serial = compare_schedulers(spec, tiny_scale, **kwargs)
        parallel = compare_schedulers(spec, tiny_scale.scaled(jobs=2), **kwargs)
        assert serial.executor == "serial"
        assert parallel.executor == "process[2]"
        assert _comparison_key(serial) == _comparison_key(parallel)

    def test_compare_schedulers_repeated_serial_runs_bit_identical(self, tiny_scale):
        spec = normal_paper_workload(tiny_scale.n_tasks)
        kwargs = dict(mean_comm_cost=5.0, seed=7)
        a = compare_schedulers(spec, tiny_scale, **kwargs)
        b = compare_schedulers(spec, tiny_scale, **kwargs)
        assert _comparison_key(a) == _comparison_key(b)

    def test_explicit_executor_overrides_scale(self, tiny_scale):
        spec = normal_paper_workload(tiny_scale.n_tasks)
        result = compare_schedulers(
            spec,
            tiny_scale.scaled(jobs=2),
            mean_comm_cost=5.0,
            seed=42,
            executor=SerialExecutor(),
        )
        assert result.executor == "serial"

    def test_sweep_serial_vs_parallel(self, tiny_scale):
        kwargs = dict(scale=tiny_scale, seed=5, repeats=2)
        serial = sweep_ga_parameter("n_rebalances", [0, 1], **kwargs)
        parallel = sweep_ga_parameter(
            "n_rebalances",
            [0, 1],
            scale=tiny_scale.scaled(jobs=2),
            seed=5,
            repeats=2,
        )
        assert serial.executor == "serial"
        assert parallel.executor == "process[2]"
        for p_serial, p_parallel in zip(serial.points, parallel.points):
            assert p_serial.value == p_parallel.value
            assert p_serial.makespan.mean == p_parallel.makespan.mean
            assert p_serial.makespan.std == p_parallel.makespan.std
            assert p_serial.reduction.mean == p_parallel.reduction.mean
            assert p_serial.generations.mean == p_parallel.generations.mean

    def test_sweep_repeated_serial_runs_bit_identical(self, tiny_scale):
        a = sweep_ga_parameter("n_rebalances", [0, 1], scale=tiny_scale, seed=9, repeats=2)
        b = sweep_ga_parameter("n_rebalances", [0, 1], scale=tiny_scale, seed=9, repeats=2)
        assert a.makespans() == b.makespans()

    def test_figure3_serial_vs_parallel(self, tiny_scale):
        serial = figure3(scale=tiny_scale, seed=11, rebalance_levels=(0, 1))
        parallel = figure3(
            scale=tiny_scale.scaled(jobs=2), seed=11, rebalance_levels=(0, 1)
        )
        assert serial.series == parallel.series
        assert parallel.metadata["executor"] == "process[2]"

    def test_figure6_serial_vs_parallel(self, tiny_scale):
        serial = figure6(scale=tiny_scale, seed=13)
        parallel = figure6(scale=tiny_scale.scaled(jobs=2), seed=13)
        assert serial.bar_values() == parallel.bar_values()
        assert serial.comparisons[0].executor == "serial"
        assert parallel.comparisons[0].executor == "process[2]"

    def test_run_figure_accepts_executor(self, tiny_scale):
        serial = run_figure("fig6", scale=tiny_scale, seed=13)
        explicit = run_figure(
            "fig6", scale=tiny_scale, seed=13, executor=ParallelExecutor(2)
        )
        assert serial.bar_values() == explicit.bar_values()
        assert explicit.metadata["executor"] == "process[2]"
