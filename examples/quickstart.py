#!/usr/bin/env python3
"""Quickstart: schedule one workload with the paper's PN scheduler.

Builds a small heterogeneous cluster, generates the paper's normally
distributed workload, runs the PN scheduler against the earliest-first (EF)
baseline in the discrete-event simulator, and prints makespan and efficiency
for both — the two metrics the paper reports.

Run with::

    python examples/quickstart.py [--tasks 300] [--processors 12] [--seed 7]
"""

from __future__ import annotations

import argparse

from repro import (
    PNScheduler,
    default_pn_ga_config,
    generate_workload,
    heterogeneous_cluster,
    make_scheduler,
    normal_paper_workload,
    simulate_schedule,
)
from repro.util.tables import format_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=300, help="number of tasks to schedule")
    parser.add_argument("--processors", type=int, default=12, help="number of processors")
    parser.add_argument("--comm-cost", type=float, default=2.0, help="mean comm cost (s/task)")
    parser.add_argument("--generations", type=int, default=60, help="GA generation limit")
    parser.add_argument("--seed", type=int, default=7, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    # 1. The environment: a heterogeneous cluster with per-link comm costs.
    cluster = heterogeneous_cluster(
        args.processors, mean_comm_cost=args.comm_cost, rng=args.seed
    )
    print(f"Cluster: {cluster}")
    print(f"  peak rates: {cluster.peak_rates().round(1)} Mflop/s")
    print(f"  mean communication cost: {cluster.mean_comm_cost():.2f} s/task\n")

    # 2. The workload: the paper's normal(1000 MFLOPs, 9e5) task sizes.
    tasks = generate_workload(normal_paper_workload(args.tasks), rng=args.seed + 1)
    print(f"Workload: {tasks}")

    # 3. The paper's scheduler (PN) and a classical baseline (EF).
    pn = PNScheduler(
        n_processors=args.processors,
        ga_config=default_pn_ga_config(max_generations=args.generations),
        rng=args.seed + 2,
    )
    ef = make_scheduler("EF", n_processors=args.processors)

    rows = []
    for scheduler in (pn, ef):
        result = simulate_schedule(scheduler, cluster, tasks, rng=args.seed + 3)
        rows.append(
            [
                scheduler.name,
                result.makespan,
                result.efficiency,
                result.metrics.mean_response_time,
                result.scheduler_invocations,
            ]
        )

    print()
    print(
        format_table(
            ["scheduler", "makespan_s", "efficiency", "mean_response_s", "invocations"],
            rows,
            title="PN vs EF on the same workload, cluster and communication noise",
        )
    )
    pn_makespan, ef_makespan = rows[0][1], rows[1][1]
    change = 100.0 * (ef_makespan - pn_makespan) / ef_makespan
    print(f"\nPN changes the makespan by {change:+.1f}% relative to EF.")


if __name__ == "__main__":
    main()
