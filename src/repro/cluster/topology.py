"""Cluster builders: convenient constructors for common system shapes."""

from __future__ import annotations

from typing import Tuple


from ..util.errors import ConfigurationError
from ..util.rng import RNGLike, spawn_rngs
from ..util.validation import require_non_negative, require_positive, require_positive_int
from .cluster import Cluster
from .network import build_random_network
from .processor import Processor
from .variation import (
    AvailabilityModel,
    ConstantAvailability,
    RandomWalkAvailability,
    SinusoidalAvailability,
)

__all__ = [
    "homogeneous_cluster",
    "heterogeneous_cluster",
    "paper_cluster",
    "varying_availability_cluster",
]

#: Default range of peak rates (Mflop/s) for heterogeneous clusters; roughly the
#: span of desktop machines available around the paper's publication date.
DEFAULT_RATE_RANGE = (50.0, 500.0)


def homogeneous_cluster(
    n_processors: int,
    rate_mflops: float = 100.0,
    *,
    mean_comm_cost: float = 0.0,
    rng: RNGLike = None,
) -> Cluster:
    """A cluster of identical, dedicated processors.

    Used to validate the ZO baseline against its original homogeneous setting
    and for unit tests where heterogeneity is irrelevant.
    """
    n_processors = require_positive_int(n_processors, "n_processors")
    require_positive(rate_mflops, "rate_mflops")
    require_non_negative(mean_comm_cost, "mean_comm_cost")
    processors = [Processor(proc_id=i, peak_rate_mflops=rate_mflops) for i in range(n_processors)]
    network = build_random_network(
        n_processors, mean_comm_cost, link_mean_spread=0.0, relative_std=0.0, rng=rng
    )
    return Cluster(processors, network)


def heterogeneous_cluster(
    n_processors: int,
    *,
    rate_range: Tuple[float, float] = DEFAULT_RATE_RANGE,
    mean_comm_cost: float = 0.0,
    link_mean_spread: float = 0.5,
    comm_relative_std: float = 0.25,
    rng: RNGLike = None,
) -> Cluster:
    """A cluster of dedicated processors with uniformly random peak rates.

    This is the fixed-execution-rate system of the paper's Sect. 4.2
    experiments ("each processor was assumed to have a fixed execution rate").
    """
    n_processors = require_positive_int(n_processors, "n_processors")
    low, high = rate_range
    require_positive(low, "rate_range low")
    require_positive(high, "rate_range high")
    if high < low:
        raise ConfigurationError(f"rate_range high ({high}) must be >= low ({low})")
    proc_rng, net_rng = spawn_rngs(rng, 2)
    rates = proc_rng.uniform(low, high, size=n_processors)
    processors = [
        Processor(proc_id=i, peak_rate_mflops=float(rates[i])) for i in range(n_processors)
    ]
    network = build_random_network(
        n_processors,
        mean_comm_cost,
        link_mean_spread=link_mean_spread,
        relative_std=comm_relative_std,
        rng=net_rng,
    )
    return Cluster(processors, network)


def paper_cluster(
    n_processors: int = 50,
    *,
    mean_comm_cost: float = 20.0,
    rng: RNGLike = None,
) -> Cluster:
    """The 50-processor heterogeneous system used in the paper's experiments."""
    return heterogeneous_cluster(
        n_processors,
        rate_range=DEFAULT_RATE_RANGE,
        mean_comm_cost=mean_comm_cost,
        rng=rng,
    )


def varying_availability_cluster(
    n_processors: int,
    *,
    rate_range: Tuple[float, float] = DEFAULT_RATE_RANGE,
    mean_comm_cost: float = 0.0,
    dedicated_fraction: float = 0.3,
    rng: RNGLike = None,
) -> Cluster:
    """A cluster mixing dedicated and non-dedicated processors.

    A fraction of the processors are dedicated (constant availability); the
    rest alternate between sinusoidal background load and mean-reverting
    random-walk load.  This is the "variable system resources" environment of
    Sect. 3 that the fixed-rate experiments abstract away.
    """
    n_processors = require_positive_int(n_processors, "n_processors")
    if not (0.0 <= dedicated_fraction <= 1.0):
        raise ConfigurationError(
            f"dedicated_fraction must lie in [0, 1], got {dedicated_fraction}"
        )
    proc_rng, net_rng, avail_rng = spawn_rngs(rng, 3)
    low, high = rate_range
    rates = proc_rng.uniform(low, high, size=n_processors)
    processors = []
    for i in range(n_processors):
        if proc_rng.random() < dedicated_fraction:
            model: AvailabilityModel = ConstantAvailability(1.0)
        elif i % 2 == 0:
            model = SinusoidalAvailability(
                base=float(avail_rng.uniform(0.6, 0.9)),
                amplitude=float(avail_rng.uniform(0.05, 0.25)),
                period=float(avail_rng.uniform(200.0, 800.0)),
                phase=float(avail_rng.uniform(0.0, 6.28)),
            )
        else:
            model = RandomWalkAvailability(
                base=float(avail_rng.uniform(0.6, 0.9)),
                sigma=float(avail_rng.uniform(0.02, 0.1)),
                step=float(avail_rng.uniform(20.0, 100.0)),
                seed=int(avail_rng.integers(0, 2**31 - 1)),
            )
        processors.append(
            Processor(proc_id=i, peak_rate_mflops=float(rates[i]), availability=model)
        )
    network = build_random_network(n_processors, mean_comm_cost, rng=net_rng)
    return Cluster(processors, network)
