"""Scheduler-comparison runner.

One :func:`compare_schedulers` call evaluates every requested scheduler on
the *same* sequence of randomly generated workloads and clusters (the paper's
"all schedulers were presented with the same set of tasks"), repeats the
whole simulation ``scale.repeats`` times with fresh workloads, and returns
per-scheduler summaries of makespan and efficiency.

Repeats are independent jobs, each seeded from its own
:class:`numpy.random.SeedSequence` child stream spawned up-front by the
parent, and are routed through an :class:`~repro.parallel.ExperimentExecutor`
(serial by default, ``scale.jobs > 1`` shards them across worker processes).
Because each repeat's randomness is fully determined by its own stream and
results are aggregated in repeat order, serial and parallel runs with the
same master seed produce bit-identical aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..cluster.cluster import Cluster
from ..parallel.executor import ExperimentExecutor, resolve_executor
from ..parallel.jobs import (
    ComparisonBlockJob,
    ComparisonRepeatJob,
    run_comparison_block,
    run_comparison_repeat,
)
from ..sim.batch import BATCH_LANE_WIDTH
from ..schedulers.registry import ALL_SCHEDULER_NAMES
from ..sim.simulation import SimulationConfig
from ..util.errors import ConfigurationError
from ..util.rng import RNGLike, ensure_rng
from ..workloads.generator import WorkloadSpec
from .config import ExperimentScale
from .stats import SampleSummary, summarise

__all__ = ["SchedulerComparison", "ComparisonResult", "compare_schedulers"]


@dataclass(frozen=True)
class SchedulerComparison:
    """Aggregated outcome of one scheduler over all repeats."""

    scheduler: str
    makespan: SampleSummary
    efficiency: SampleSummary
    mean_response_time: SampleSummary
    invocations: SampleSummary

    def as_row(self) -> List[object]:
        """Row used by the reporting tables."""
        return [
            self.scheduler,
            self.makespan.mean,
            self.makespan.std,
            self.efficiency.mean,
            self.efficiency.std,
        ]


@dataclass
class ComparisonResult:
    """All schedulers' aggregated results for one experimental condition."""

    condition: Dict[str, object]
    schedulers: Dict[str, SchedulerComparison]
    repeats: int
    #: Which executor produced the repeats (``"serial"`` or ``"process[N]"``);
    #: recorded so persisted results document how they were computed.
    executor: str = "serial"

    def makespans(self) -> Dict[str, float]:
        """Mean makespan per scheduler (insertion order preserved)."""
        return {name: cmp.makespan.mean for name, cmp in self.schedulers.items()}

    def efficiencies(self) -> Dict[str, float]:
        """Mean efficiency per scheduler."""
        return {name: cmp.efficiency.mean for name, cmp in self.schedulers.items()}

    def best_by_makespan(self) -> str:
        """Name of the scheduler with the lowest mean makespan."""
        return min(self.schedulers, key=lambda n: self.schedulers[n].makespan.mean)

    def best_by_efficiency(self) -> str:
        """Name of the scheduler with the highest mean efficiency."""
        return max(self.schedulers, key=lambda n: self.schedulers[n].efficiency.mean)

    def rank_of(self, scheduler: str, metric: str = "makespan") -> int:
        """1-based rank of *scheduler* (1 = best) under the given metric."""
        if metric == "makespan":
            ordered = sorted(self.schedulers, key=lambda n: self.schedulers[n].makespan.mean)
        elif metric == "efficiency":
            ordered = sorted(
                self.schedulers, key=lambda n: -self.schedulers[n].efficiency.mean
            )
        else:
            raise ConfigurationError(f"unknown metric {metric!r}")
        return ordered.index(scheduler) + 1


def compare_schedulers(
    workload_spec: WorkloadSpec,
    scale: ExperimentScale,
    *,
    mean_comm_cost: float,
    scheduler_names: Optional[Sequence[str]] = None,
    cluster_factory: Optional[Callable[[np.random.Generator], Cluster]] = None,
    seed: RNGLike = None,
    condition: Optional[Dict[str, object]] = None,
    sim_config: Optional[SimulationConfig] = None,
    executor: Optional[ExperimentExecutor] = None,
) -> ComparisonResult:
    """Run every scheduler on identical workloads and summarise the outcomes.

    Each repeat is an independent :class:`~repro.parallel.ComparisonRepeatJob`
    seeded from its own ``SeedSequence`` child stream; the executor maps the
    job list and the outcomes are aggregated in repeat order.  A parallel run
    (``scale.jobs > 1`` or an explicit :class:`~repro.parallel.ParallelExecutor`)
    therefore returns exactly the same aggregates as the serial run with the
    same master seed.

    Parameters
    ----------
    workload_spec:
        The workload shape (size distribution, arrival process); a fresh task
        set is drawn from it for every repeat and shared by all schedulers.
    scale:
        Experiment scale (processor count, batch size, GA budget, repeats,
        and ``jobs`` — the number of worker processes the repeats are
        sharded across).
    mean_comm_cost:
        Mean per-link communication cost of the generated cluster (seconds).
    scheduler_names:
        Which schedulers to run; defaults to the paper's seven.
    cluster_factory:
        Optional custom cluster builder ``f(rng) -> Cluster``; the default
        builds a heterogeneous cluster per repeat with the requested mean
        communication cost.  Must be picklable to run in worker processes;
        unpicklable factories transparently fall back to in-process execution.
    seed:
        Master seed; per-repeat and per-scheduler streams are derived from it.
    condition:
        Free-form description of the experimental condition stored in the
        result (e.g. ``{"figure": "5", "mean_comm_cost": 20.0}``).
    executor:
        Explicit executor to route the repeats through; overrides
        ``scale.jobs`` when given.
    """
    names = list(scheduler_names or ALL_SCHEDULER_NAMES)
    unknown = [n for n in names if n.upper() not in ALL_SCHEDULER_NAMES]
    if unknown:
        raise ConfigurationError(f"unknown schedulers requested: {unknown}")
    executor = resolve_executor(executor, scale.jobs, scale.executor)
    if sim_config is None:
        # An explicit sim_config wins; otherwise the scale's simulation and
        # policy backend choices (CLI --sim-backend / --policy-backend) are
        # threaded into every repeat.
        sim_config = SimulationConfig(
            sim_backend=scale.sim_backend, policy_backend=scale.policy_backend
        )

    # One 64-bit draw per repeat from the master stream, exactly as the serial
    # harness has always consumed it; each draw seeds the repeat's private
    # SeedSequence so workers need no shared random state.
    master_rng = ensure_rng(seed)
    repeat_seeds = [
        int(master_rng.integers(0, 2**63 - 1)) for _ in range(scale.repeats)
    ]
    jobs = [
        ComparisonRepeatJob(
            seed_entropy=repeat_seed,
            workload_spec=workload_spec,
            scheduler_names=tuple(names),
            n_processors=scale.n_processors,
            batch_size=scale.batch_size,
            max_generations=scale.max_generations,
            mean_comm_cost=mean_comm_cost,
            sim_config=sim_config,
            cluster_factory=cluster_factory,
            ga_backend=scale.ga_backend,
        )
        for repeat_seed in repeat_seeds
    ]
    if sim_config.sim_backend == "batch":
        # The repeat axis becomes the batch axis: one executor job replays a
        # whole lane block per scheduler.  Per-repeat streams are unchanged,
        # so the aggregates are bit-identical to the per-repeat path.
        blocks = [
            ComparisonBlockJob(jobs=tuple(jobs[lo : lo + BATCH_LANE_WIDTH]))
            for lo in range(0, len(jobs), BATCH_LANE_WIDTH)
        ]
        outcomes = [
            outcome
            for block in executor.map(run_comparison_block, blocks)
            for outcome in block
        ]
    else:
        outcomes = executor.map(run_comparison_repeat, jobs)

    per_scheduler: Dict[str, Dict[str, List[float]]] = {
        name: {"makespan": [], "efficiency": [], "response": [], "invocations": []}
        for name in names
    }
    for outcome in outcomes:
        for name in names:
            makespan, efficiency, response, invocations = outcome.metrics[name]
            per_scheduler[name]["makespan"].append(makespan)
            per_scheduler[name]["efficiency"].append(efficiency)
            per_scheduler[name]["response"].append(response)
            per_scheduler[name]["invocations"].append(invocations)

    comparisons = {
        name: SchedulerComparison(
            scheduler=name,
            makespan=summarise(data["makespan"]),
            efficiency=summarise(data["efficiency"]),
            mean_response_time=summarise(data["response"]),
            invocations=summarise(data["invocations"]),
        )
        for name, data in per_scheduler.items()
    }
    return ComparisonResult(
        condition=dict(condition or {"mean_comm_cost": mean_comm_cost}),
        schedulers=comparisons,
        repeats=scale.repeats,
        executor=executor.describe(),
    )
