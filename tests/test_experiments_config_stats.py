"""Tests for experiment scales and statistics helpers."""

import pytest

from repro.experiments import (
    SCALES,
    ExperimentScale,
    default_scale,
    get_scale,
    relative_change,
    summarise,
)
from repro.util.errors import ConfigurationError


class TestExperimentScale:
    def test_all_presets_valid(self):
        assert set(SCALES) == {"smoke", "small", "medium", "paper"}
        for scale in SCALES.values():
            assert scale.n_tasks > 0 and scale.repeats > 0

    def test_paper_scale_matches_publication(self):
        paper = get_scale("paper")
        assert paper.n_processors == 50
        assert paper.n_tasks_large == 10000
        assert paper.batch_size == 200
        assert paper.max_generations == 1000

    def test_inverse_comm_costs(self):
        scale = get_scale("small")
        inverses = scale.inverse_comm_costs()
        assert inverses == pytest.approx([1.0 / c for c in scale.comm_cost_means])

    def test_scaled_override(self):
        scale = get_scale("smoke").scaled(repeats=9)
        assert scale.repeats == 9
        assert scale.n_tasks == get_scale("smoke").n_tasks

    def test_get_scale_case_insensitive(self):
        assert get_scale("SMALL").name == "small"

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            get_scale("giant")

    def test_default_scale_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert default_scale().name == "small"
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert default_scale().name == "paper"

    def test_invalid_scale_construction(self):
        with pytest.raises(ConfigurationError):
            ExperimentScale(
                name="bad",
                n_tasks=10,
                n_tasks_large=10,
                n_processors=2,
                batch_size=5,
                max_generations=5,
                repeats=1,
                comm_cost_means=(),
            )


class TestSummarise:
    def test_basic_statistics(self):
        summary = summarise([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.count == 3
        assert summary.std == pytest.approx(1.0)

    def test_single_sample_has_zero_std(self):
        summary = summarise([5.0])
        assert summary.std == 0.0
        assert summary.standard_error == 0.0

    def test_confidence_interval_contains_mean(self):
        summary = summarise([1.0, 2.0, 3.0, 4.0])
        low, high = summary.confidence_interval()
        assert low <= summary.mean <= high

    def test_format(self):
        assert "±" in format(summarise([1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarise([])

    def test_non_finite_rejected(self):
        with pytest.raises(ConfigurationError):
            summarise([1.0, float("nan")])


class TestRelativeChange:
    def test_positive_and_negative(self):
        assert relative_change(10.0, 15.0) == pytest.approx(0.5)
        assert relative_change(10.0, 5.0) == pytest.approx(-0.5)

    def test_zero_reference(self):
        assert relative_change(0.0, 5.0) == 0.0
