"""Min-min (MM) batch-mode heuristic scheduler.

MM takes a batch of tasks on a FCFS basis, sorts them by size in *ascending*
order, and repeatedly assigns the smallest remaining task to the processor
that would finish it first (Sect. 4.1).  Scheduling the small tasks first
keeps many processors busy early, at the risk of leaving a large task to
dominate the tail of the schedule.  Complexity Θ(max(M, n log n)) per batch.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..workloads.task import Task
from .base import BatchScheduler, ScheduleAssignment, SchedulingContext

__all__ = ["MinMinScheduler"]


class MinMinScheduler(BatchScheduler):
    """Smallest-task-first batch heuristic using earliest-finish placement."""

    name = "MM"
    #: Sort direction; the max-min scheduler flips this flag.
    descending = False

    def __init__(self, batch_size: Optional[int] = 200):
        super().__init__(batch_size)

    def schedule(self, tasks: Sequence[Task], ctx: SchedulingContext) -> ScheduleAssignment:
        ordered = sorted(
            tasks, key=lambda t: (t.size_mflops, t.task_id), reverse=self.descending
        )
        loads = ctx.pending_loads.copy()
        queues: List[List[int]] = [[] for _ in range(ctx.n_processors)]
        for task in ordered:
            finish_times = (loads + task.size_mflops) / ctx.rates
            proc = int(np.argmin(finish_times))
            queues[proc].append(task.task_id)
            loads[proc] += task.size_mflops
        return ScheduleAssignment(queues)
