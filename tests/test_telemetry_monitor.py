"""Tests for the live run monitor (``repro.telemetry.monitor``).

Contracts under test: the status file is always a complete JSON document
(atomic replace, never torn), heartbeats are free when no monitor is in
scope, and an interrupted run leaves an honest post-mortem status behind
that a resume overwrites with a fresh one.
"""

import io
import json
import os

import pytest

from repro.campaigns import CampaignSpec, ResultStore, run_campaign
from repro.cli import main
from repro.parallel.jobs import job_label
from repro.scenarios import run_scenario_matrix
from repro.telemetry.monitor import (
    RECENT_EVENTS,
    RunMonitor,
    WorkerHeartbeat,
    get_heartbeat_dir,
    heartbeat_context,
    load_status,
    load_worker_heartbeats,
    render_status,
    watch,
    wrap_jobs_fn,
)
from repro.util.errors import ConfigurationError


def _square(x):
    return x * x


class TestRunMonitor:
    def test_creates_parent_dirs_and_initial_status(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.status.json"
        monitor = RunMonitor(str(path), name="demo", total_units=3)
        status = load_status(str(path))
        assert status["state"] == "running"
        assert status["total_units"] == 3
        assert status["computed"] == 0
        assert os.path.isdir(monitor.workers_dir)

    def test_cell_events_update_counts_and_recent(self, tmp_path):
        path = str(tmp_path / "s.json")
        monitor = RunMonitor(
            path, name="demo", total_units=4, cached=1, executor="process[2]",
            lane_widths=[2, 2], interval=0,
        )
        monitor.cell_event("cell-a", "computed", 1.5)
        monitor.cell_event("cell-b", "cached")
        status = load_status(path)
        assert status["computed"] == 1
        assert status["cached"] == 2
        assert status["pending"] == 1
        assert status["lane_widths"] == [2, 2]
        assert [e["cell_id"] for e in status["recent"]] == ["cell-a", "cell-b"]
        assert status["recent"][0]["elapsed_seconds"] == 1.5

    def test_recent_events_are_bounded(self, tmp_path):
        path = str(tmp_path / "s.json")
        monitor = RunMonitor(path, name="demo", total_units=100, interval=0)
        for i in range(RECENT_EVENTS + 5):
            monitor.cell_event(f"cell-{i}", "computed")
        recent = load_status(path)["recent"]
        assert len(recent) == RECENT_EVENTS
        assert recent[-1]["cell_id"] == f"cell-{RECENT_EVENTS + 4}"

    def test_throttle_skips_steady_writes_but_finish_forces(self, tmp_path):
        path = str(tmp_path / "s.json")
        monitor = RunMonitor(path, name="demo", total_units=2, interval=3600)
        monitor.cell_event("cell-a", "computed")
        # Throttled: the file still shows the initial snapshot...
        assert load_status(path)["computed"] == 0
        monitor.finish("finished")
        # ...but the terminal write goes through regardless.
        status = load_status(path)
        assert status["computed"] == 1 and status["state"] == "finished"

    def test_finish_records_interrupt_reason(self, tmp_path):
        path = str(tmp_path / "s.json")
        monitor = RunMonitor(path, name="demo", total_units=2, interval=0)
        monitor.finish("interrupted", "stopped after max_cells=1")
        status = load_status(path)
        assert status["state"] == "interrupted"
        assert status["interrupt_reason"] == "stopped after max_cells=1"
        assert "resume" in render_status(status)

    def test_stale_worker_files_cleared_on_start(self, tmp_path):
        path = str(tmp_path / "s.json")
        workers_dir = path + ".workers"
        os.makedirs(workers_dir)
        stale = os.path.join(workers_dir, "worker-99999.json")
        with open(stale, "w") as handle:
            handle.write("{}")
        RunMonitor(path, name="demo", total_units=1)
        assert not os.path.exists(stale)

    def test_status_file_is_always_whole_json(self, tmp_path):
        # Atomic replace: even mid-run there is never a torn file on disk.
        path = str(tmp_path / "s.json")
        monitor = RunMonitor(path, name="demo", total_units=50, interval=0)
        for i in range(50):
            monitor.cell_event(f"cell-{i}", "computed")
            with open(path) as handle:
                json.loads(handle.read())


class TestLoadAndRender:
    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no run status"):
            load_status(str(tmp_path / "nope.json"))

    def test_load_rejects_wrong_shape(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"kind": "something"}))
        with pytest.raises(ConfigurationError):
            load_status(str(path))

    def _status(self, tmp_path, **overrides):
        path = str(tmp_path / "s.json")
        RunMonitor(path, name="demo", total_units=4, executor="process[2]")
        status = load_status(path)
        status.update(overrides)
        return status

    def test_running_status_goes_stale(self, tmp_path):
        status = self._status(tmp_path)
        now = status["updated_at"]
        assert "STALE" not in render_status(status, now=now + 1, stale_after=15)
        assert "STALE" in render_status(status, now=now + 100, stale_after=15)
        # A finished run is just old, not stale.
        status["state"] = "finished"
        assert "STALE" not in render_status(status, now=now + 100, stale_after=15)

    def test_render_includes_progress_and_workers(self, tmp_path):
        status = self._status(tmp_path, computed=2, cached=1, pending=1)
        beat = {
            "kind": "worker_heartbeat",
            "pid": 4242,
            "state": "running",
            "job": "repeat:seed=9",
            "jobs_done": 3,
            "updated_at": status["updated_at"],
        }
        text = render_status(status, [beat], now=status["updated_at"])
        assert "campaign demo [running]  via process[2]" in text
        assert "2 computed + 1 cached = 3/4" in text
        assert "pid 4242" in text and "repeat:seed=9" in text


class TestWorkerHeartbeats:
    def test_wrap_is_identity_without_monitor(self):
        assert get_heartbeat_dir() is None
        assert wrap_jobs_fn(_square) is _square

    def test_heartbeat_context_activates_and_restores(self, tmp_path):
        directory = str(tmp_path / "workers")
        os.makedirs(directory)
        with heartbeat_context(directory):
            assert get_heartbeat_dir() == directory
            wrapped = wrap_jobs_fn(_square)
            assert isinstance(wrapped, WorkerHeartbeat)
            assert wrapped(6) == 36
        assert get_heartbeat_dir() is None

    def test_heartbeat_file_contents(self, tmp_path):
        status_path = str(tmp_path / "s.json")
        directory = status_path + ".workers"
        os.makedirs(directory)
        WorkerHeartbeat(_square, directory)(3)
        beats = load_worker_heartbeats(status_path)
        assert len(beats) == 1
        beat = beats[0]
        assert beat["pid"] == os.getpid()
        assert beat["state"] == "idle"  # written after the job finished
        assert beat["jobs_done"] >= 1

    def test_torn_heartbeat_files_are_skipped(self, tmp_path):
        status_path = str(tmp_path / "s.json")
        directory = status_path + ".workers"
        os.makedirs(directory)
        with open(os.path.join(directory, "worker-1.json"), "w") as handle:
            handle.write('{"kind": "worker_heartbeat", "pid": 1}')
        with open(os.path.join(directory, "worker-2.json"), "w") as handle:
            handle.write('{"torn...')
        beats = load_worker_heartbeats(status_path)
        assert [b["pid"] for b in beats] == [1]

    def test_missing_workers_dir_is_empty(self, tmp_path):
        assert load_worker_heartbeats(str(tmp_path / "s.json")) == []

    def test_heartbeat_survives_unwritable_directory(self, tmp_path):
        # The work matters, the telemetry doesn't: a dead heartbeat target
        # must not take the job down.
        wrapped = WorkerHeartbeat(_square, str(tmp_path / "gone" / "deeper"))
        assert wrapped(4) == 16

    def test_job_label_shapes(self):
        class WithCell:
            cell_id = "scenario/EF/r0"

        assert job_label(WithCell()) == "scenario/EF/r0"
        assert job_label((WithCell(),)) == "scenario/EF/r0"
        assert job_label((WithCell(), WithCell())) == "scenario/EF/r0 (+1 more)"
        assert job_label(object()) == "object"


class TestWatch:
    def _finished_status(self, tmp_path, state="finished", reason=""):
        path = str(tmp_path / "s.json")
        monitor = RunMonitor(path, name="demo", total_units=1, interval=0)
        monitor.cell_event("cell-a", "computed")
        monitor.finish(state, reason)
        return path

    def test_once_renders_single_frame(self, tmp_path):
        path = self._finished_status(tmp_path)
        stream = io.StringIO()
        status = watch(path, once=True, stream=stream)
        assert status["state"] == "finished"
        assert stream.getvalue().count("campaign demo") == 1

    def test_exits_when_run_not_running(self, tmp_path):
        path = self._finished_status(tmp_path, "interrupted", "ctrl-c")
        stream = io.StringIO()
        status = watch(path, interval=0.01, stream=stream)
        assert status["state"] == "interrupted"
        assert "ctrl-c" in stream.getvalue()

    def test_max_frames_bounds_a_running_watch(self, tmp_path):
        path = str(tmp_path / "s.json")
        RunMonitor(path, name="demo", total_units=5)  # stays "running"
        stream = io.StringIO()
        status = watch(path, interval=0.01, stream=stream, max_frames=2)
        assert status["state"] == "running"
        assert stream.getvalue().count("campaign demo") == 2


class TestRunnersWriteStatus:
    def _spec(self, name="mon-test"):
        return CampaignSpec(
            name=name, scale="smoke", seed=11,
            scenarios=("failure-storm",), schedulers=("LL", "EF"), repeats=1,
        )

    def test_campaign_writes_finished_status(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        result = run_campaign(self._spec(), store)
        assert result.complete
        status = load_status(store.status_path("mon-test"))
        assert status["state"] == "finished"
        assert status["computed"] == result.computed
        assert status["cached"] == 0
        assert status["total_units"] == 2

    def test_warm_rerun_status_counts_cache_hits(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        run_campaign(self._spec(), store)
        result = run_campaign(self._spec(), store)
        assert result.cached == 2
        status = load_status(store.status_path("mon-test"))
        assert status["state"] == "finished"
        assert status["computed"] == 0 and status["cached"] == 2

    def test_interrupt_then_resume_status_lifecycle(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        spec = self._spec()
        partial = run_campaign(spec, store, max_cells=1)
        assert not partial.complete
        status = load_status(store.status_path("mon-test"))
        assert status["state"] == "interrupted"
        assert status["interrupt_reason"]
        resumed = run_campaign(spec, store)
        assert resumed.complete
        status = load_status(store.status_path("mon-test"))
        assert status["state"] == "finished"
        assert status["cached"] == 1 and status["computed"] == 1

    def test_status_sidecar_not_listed_as_campaign(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        run_campaign(self._spec(), store)
        assert store.manifest_names() == ["mon-test"]

    def test_scenario_matrix_status_file(self, tmp_path):
        status_path = str(tmp_path / "matrix.status.json")
        run_scenario_matrix(
            ["failure-storm"], schedulers=["LL"], repeats=2, seed=3,
            status_path=status_path,
        )
        status = load_status(status_path)
        assert status["state"] == "finished"
        assert status["computed"] == 2
        assert status["name"] == "scenario-matrix"


class TestCliWatch:
    def test_watch_by_store_and_name(self, tmp_path, capsys):
        store = ResultStore(str(tmp_path / "store"))
        spec = CampaignSpec(
            name="cli-watch", scale="smoke", seed=2,
            scenarios=("failure-storm",), schedulers=("LL",), repeats=1,
        )
        run_campaign(spec, store)
        code = main(
            ["campaigns", "watch", "--store", str(tmp_path / "store"),
             "cli-watch", "--once"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign cli-watch [finished]" in out

    def test_watch_status_file_interrupted_exits_3(self, tmp_path, capsys):
        path = str(tmp_path / "s.json")
        RunMonitor(path, name="x", total_units=1).finish("interrupted", "boom")
        assert main(["campaigns", "watch", "--status-file", path, "--once"]) == 3
        capsys.readouterr()

    def test_watch_without_target_errors(self, capsys):
        assert main(["campaigns", "watch", "--once"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_scenarios_run_status_file_flag(self, tmp_path, capsys):
        status_path = tmp_path / "deep" / "scen.status.json"
        code = main(
            ["scenarios", "run", "failure-storm", "--scale", "smoke",
             "--repeats", "1", "--schedulers", "LL",
             "--status-file", str(status_path)]
        )
        assert code == 0
        capsys.readouterr()
        assert load_status(str(status_path))["state"] == "finished"
