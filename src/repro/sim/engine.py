"""Minimal discrete-event engine: a time-ordered event queue and a run loop."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Set

from ..util.errors import SimulationError
from .events import Event, EventKind

__all__ = ["EventQueue", "DiscreteEventEngine"]


class EventQueue:
    """A priority queue of :class:`Event` objects ordered by time then insertion."""

    def __init__(self) -> None:
        self._heap: List[Event] = []

    def push(self, event: Event) -> None:
        """Insert an event."""
        heapq.heappush(self._heap, event)

    def pop(self) -> Event:
        """Remove and return the earliest event (raises when empty)."""
        if not self._heap:
            raise SimulationError("cannot pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Return the earliest event without removing it (raises when empty)."""
        if not self._heap:
            raise SimulationError("cannot peek into an empty event queue")
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class DiscreteEventEngine:
    """Run loop: pops events in time order and dispatches them to handlers.

    Handlers are registered per :class:`EventKind`; each handler receives the
    event and may push follow-up events through :meth:`schedule`.  The engine
    enforces that time never goes backwards and guards against runaway event
    storms with a configurable event budget.

    Each engine owns its own event sequence counter, so the ``(time, seq)``
    tie-break ordering of simultaneous events is deterministic per simulation
    and independent of any other simulation run in the same process.
    """

    def __init__(self, max_events: int = 10_000_000) -> None:
        if max_events <= 0:
            raise SimulationError(f"max_events must be positive, got {max_events}")
        self.queue = EventQueue()
        self.now = 0.0
        self.processed_events = 0
        self.max_events = int(max_events)
        self._handlers: Dict[EventKind, Callable[[Event], None]] = {}
        self._sequence = itertools.count()
        self._cancelled: Set[int] = set()

    def register(self, kind: EventKind, handler: Callable[[Event], None]) -> None:
        """Register the handler invoked for every event of *kind*."""
        self._handlers[kind] = handler

    def registered_kinds(self) -> List[EventKind]:
        """Event kinds that currently have a handler (in registration order)."""
        return list(self._handlers)

    def schedule(self, time: float, kind: EventKind, **data) -> Event:
        """Create an event at *time* and insert it into the queue.

        Raises a :class:`SimulationError` immediately when *kind* has no
        registered handler: failing here, with the scheduling call still on
        the stack, is far easier to diagnose than the same failure surfacing
        later from :meth:`run` with no hint of who produced the event.
        """
        if kind not in self._handlers:
            registered = sorted(k.value for k in self.registered_kinds())
            raise SimulationError(
                f"cannot schedule event kind {kind.value!r}: no handler is registered "
                f"for it (registered kinds: {registered or 'none'}); call "
                f"engine.register({kind!s}, handler) before scheduling"
            )
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule an event at t={time} before the current time {self.now}"
            )
        event = Event.make(max(time, self.now), kind, seq=next(self._sequence), **data)
        self.queue.push(event)
        return event

    def cancel(self, event: Event) -> None:
        """Revoke a previously scheduled event: it is skipped when popped.

        Cancellation is by tombstone (the heap is not re-ordered); cancelled
        events do not count towards the processed-event budget.
        """
        self._cancelled.add(event.seq)

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue empties (or simulated *until* is reached).

        Returns the simulation time of the last processed event.
        """
        while self.queue:
            if until is not None and self.queue.peek().time > until:
                break
            event = self.queue.pop()
            if event.seq in self._cancelled:
                self._cancelled.discard(event.seq)
                continue
            if event.time < self.now - 1e-9:
                raise SimulationError(
                    f"event at t={event.time} is earlier than current time {self.now}"
                )
            self.now = max(self.now, event.time)
            handler = self._handlers.get(event.kind)
            if handler is None:
                registered = sorted(k.value for k in self.registered_kinds())
                raise SimulationError(
                    f"no handler registered for event kind {event.kind.value!r} "
                    f"(registered kinds: {registered or 'none'})"
                )
            handler(event)
            self.processed_events += 1
            if self.processed_events > self.max_events:
                raise SimulationError(
                    f"event budget of {self.max_events} exceeded; "
                    "the simulation is likely stuck in an event loop"
                )
        return self.now
