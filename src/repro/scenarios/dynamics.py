"""Declarative cluster-dynamics actions and the timeline that injects them.

The paper's motivation is scheduling on *non-dedicated, changing* clusters,
but the base simulator only varies per-processor availability — the cluster
membership itself is fixed.  This module adds the missing axis: a
:class:`DynamicsTimeline` is an ordered collection of declarative, picklable
actions (worker failure / recovery / join, load spikes) that the simulator
turns into the new :class:`~repro.sim.events.EventKind` events
(``WORKER_FAILURE``, ``WORKER_RECOVERY``, ``WORKER_JOIN``, ``LOAD_SPIKE``).

Conservation contract
---------------------
Fault injection never loses or duplicates work: the master re-queues a failed
worker's in-flight task and master-side queue and re-invokes the scheduling
policy, so every arrived task still completes exactly once (the test suite
asserts this per scenario).  Load spikes materialise their extra tasks from
the simulation's own dynamics RNG stream, so serial and process-parallel
scenario runs stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Set, Tuple, Union

from ..sim.events import EventKind
from ..util.errors import ConfigurationError
from ..util.rng import RNGLike, ensure_rng
from ..util.validation import require_at_least, require_non_negative, require_positive_int
from ..workloads.distributions import SizeDistribution
from ..workloads.task import Task

__all__ = [
    "WorkerFailure",
    "WorkerRecovery",
    "WorkerJoin",
    "LoadSpike",
    "DynamicsAction",
    "DynamicsTimeline",
]


def _check_time(time: float) -> float:
    return require_non_negative(time, "dynamics action time")


def _check_proc(proc: int) -> int:
    return require_at_least(proc, 0, "proc")


@dataclass(frozen=True)
class WorkerFailure:
    """Worker *proc* vanishes at *time*: queued and in-flight work is re-queued."""

    time: float
    proc: int

    def __post_init__(self) -> None:
        _check_time(self.time)
        _check_proc(self.proc)


@dataclass(frozen=True)
class WorkerRecovery:
    """A previously failed worker *proc* rejoins the cluster at *time*."""

    time: float
    proc: int

    def __post_init__(self) -> None:
        _check_time(self.time)
        _check_proc(self.proc)


@dataclass(frozen=True)
class WorkerJoin:
    """A pre-provisioned worker *proc* joins the cluster for the first time.

    Workers with a join action start the simulation offline (they are outside
    the cluster until their join time) but accrue no downtime for the
    pre-join phase.
    """

    time: float
    proc: int

    def __post_init__(self) -> None:
        _check_time(self.time)
        _check_proc(self.proc)


@dataclass(frozen=True)
class LoadSpike:
    """A burst of *n_tasks* extra tasks (sizes drawn from *sizes*) at *time*.

    The tasks are materialised by the simulation's dynamics RNG stream with
    ids continuing after the base workload, so spikes never collide with or
    perturb the base tasks' randomness.
    """

    time: float
    n_tasks: int
    sizes: SizeDistribution

    def __post_init__(self) -> None:
        _check_time(self.time)
        require_positive_int(self.n_tasks, "load spike n_tasks")

    def materialise(self, first_task_id: int, rng: RNGLike = None) -> List[Task]:
        """Draw the spike's tasks (arrival time = spike time, consecutive ids)."""
        gen = ensure_rng(rng)
        sizes = self.sizes.sample(int(self.n_tasks), gen)
        return [
            Task(
                task_id=first_task_id + i,
                size_mflops=float(sizes[i]),
                arrival_time=self.time,
            )
            for i in range(int(self.n_tasks))
        ]


DynamicsAction = Union[WorkerFailure, WorkerRecovery, WorkerJoin, LoadSpike]

_EVENT_KIND_OF = {
    WorkerFailure: EventKind.WORKER_FAILURE,
    WorkerRecovery: EventKind.WORKER_RECOVERY,
    WorkerJoin: EventKind.WORKER_JOIN,
    LoadSpike: EventKind.LOAD_SPIKE,
}


class DynamicsTimeline:
    """An ordered, validated sequence of cluster-dynamics actions.

    Implements the :class:`~repro.sim.simulation.DynamicsTimelineLike`
    protocol the simulator consumes.  Actions are sorted by ``(time,
    declaration order)`` so ties resolve deterministically.
    """

    def __init__(self, actions: Iterable[DynamicsAction] = ()):
        actions = list(actions)
        for action in actions:
            if type(action) not in _EVENT_KIND_OF:
                raise ConfigurationError(
                    f"unknown dynamics action {action!r}; expected one of "
                    f"{sorted(cls.__name__ for cls in _EVENT_KIND_OF)}"
                )
        self._actions: List[DynamicsAction] = sorted(
            actions, key=lambda a: a.time, reverse=False
        )
        # A worker can only join once, and it must not fail before joining.
        joins: Dict[int, float] = {}
        for action in self._actions:
            if isinstance(action, WorkerJoin):
                if action.proc in joins:
                    raise ConfigurationError(
                        f"processor {action.proc} has more than one join action"
                    )
                joins[action.proc] = action.time
        for action in self._actions:
            if isinstance(action, (WorkerFailure, WorkerRecovery)):
                join_time = joins.get(action.proc)
                if join_time is not None and action.time < join_time:
                    raise ConfigurationError(
                        f"processor {action.proc} fails/recovers at t={action.time} "
                        f"before joining at t={join_time}"
                    )

    @property
    def actions(self) -> List[DynamicsAction]:
        """The actions in injection order."""
        return list(self._actions)

    def __len__(self) -> int:
        return len(self._actions)

    def __bool__(self) -> bool:
        return bool(self._actions)

    def max_proc(self) -> int:
        """Highest processor id any action references (-1 when none do)."""
        procs = [a.proc for a in self._actions if hasattr(a, "proc")]
        return max(procs, default=-1)

    def initially_offline(self) -> Set[int]:
        """Processors that join later and therefore start outside the cluster."""
        return {a.proc for a in self._actions if isinstance(a, WorkerJoin)}

    def injected_task_count(self) -> int:
        """Total extra tasks all load spikes will inject."""
        return sum(a.n_tasks for a in self._actions if isinstance(a, LoadSpike))

    def sim_events(
        self, *, next_task_id: int, rng: RNGLike = None
    ) -> Sequence[Tuple[float, EventKind, Dict[str, Any]]]:
        """Materialise the ``(time, kind, data)`` triples the engine schedules.

        Load-spike tasks are drawn action-by-action in timeline order from
        *rng*, so the same seed always produces the same injected workload.
        """
        gen = ensure_rng(rng)
        events: List[Tuple[float, EventKind, Dict[str, Any]]] = []
        task_id = int(next_task_id)
        for action in self._actions:
            kind = _EVENT_KIND_OF[type(action)]
            if isinstance(action, LoadSpike):
                tasks = action.materialise(task_id, gen)
                task_id += len(tasks)
                events.append((action.time, kind, {"tasks": tasks}))
            else:
                events.append((action.time, kind, {"proc": action.proc}))
        return events

    def describe(self) -> List[str]:
        """One human-readable line per action (for reports and ``scenarios list``)."""
        lines = []
        for action in self._actions:
            if isinstance(action, LoadSpike):
                lines.append(
                    f"t={action.time:g}: load spike of {action.n_tasks} tasks "
                    f"({action.sizes.name})"
                )
            else:
                verb = {
                    WorkerFailure: "fails",
                    WorkerRecovery: "recovers",
                    WorkerJoin: "joins",
                }[type(action)]
                lines.append(f"t={action.time:g}: worker {action.proc} {verb}")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DynamicsTimeline(n_actions={len(self._actions)})"
