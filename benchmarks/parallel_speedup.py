#!/usr/bin/env python3
"""Benchmark: serial vs process-parallel scheduler comparison.

Times `compare_schedulers` once through `SerialExecutor` and once through
`ParallelExecutor`, verifies the aggregates are bit-identical, and writes a
schema-v2 BENCH record.  On an N-core machine a paper-scale comparison
(`--scale paper`, 20 repeats) is expected to speed up by roughly
min(N, repeats) minus process-pool overhead; on a single core the parallel
run only measures that overhead.

Run with::

    PYTHONPATH=src python benchmarks/parallel_speedup.py \
        --scale medium --repeats 8 --jobs 4 --output benchmarks/BENCH_parallel.json

Regression gating happens centrally via ``repro scorecard check``: the
``aggregates_bit_identical`` row carries a hard floor of 1.0 (the serial
and parallel aggregates must stay bit-identical), while the speedup itself
is dashboard-only — it tracks the runner's core count, not the code.
"""

from __future__ import annotations

import argparse
import os
import time

from _shared import bench_row, write_bench_record
from repro.experiments import compare_schedulers, get_scale
from repro.workloads import normal_paper_workload


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="medium", help="experiment scale preset")
    parser.add_argument(
        "--repeats", type=int, default=None, help="override the scale's repeat count"
    )
    parser.add_argument(
        "--jobs", type=int, default=os.cpu_count() or 2, help="parallel worker count"
    )
    parser.add_argument("--comm-cost", type=float, default=10.0, help="mean comm cost (s)")
    parser.add_argument("--seed", type=int, default=42, help="master random seed")
    parser.add_argument("--output", default=None, help="write the BENCH json here")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    scale = get_scale(args.scale)
    if args.repeats:
        scale = scale.scaled(repeats=args.repeats)
    spec = normal_paper_workload(scale.n_tasks)

    timings = {}
    results = {}
    for label, jobs in (("serial", 1), (f"parallel[{args.jobs}]", args.jobs)):
        start = time.perf_counter()
        results[label] = compare_schedulers(
            spec,
            scale.scaled(jobs=jobs),
            mean_comm_cost=args.comm_cost,
            seed=args.seed,
        )
        timings[label] = time.perf_counter() - start

    serial_key, parallel_key = list(timings)
    identical = (
        results[serial_key].makespans() == results[parallel_key].makespans()
        and results[serial_key].efficiencies() == results[parallel_key].efficiencies()
    )
    speedup = round(timings[serial_key] / timings[parallel_key], 3)
    rows = [
        bench_row(
            "aggregates_bit_identical",
            1.0 if identical else 0.0,
            "bool",
            scale=scale.name,
            floor=1.0,
        ),
        bench_row("parallel_speedup", speedup, "x", scale=scale.name),
    ]
    write_bench_record(
        "parallel_speedup",
        rows,
        output=args.output,
        config={
            "scale": scale.name,
            "repeats": scale.repeats,
            "n_tasks": scale.n_tasks,
            "n_processors": scale.n_processors,
            "jobs": args.jobs,
            "seed": args.seed,
        },
        detail={"seconds": {k: round(v, 3) for k, v in timings.items()}},
    )
    if not identical:
        raise SystemExit("serial and parallel aggregates diverged")


if __name__ == "__main__":
    main()
