"""Tests for run-to-run telemetry diffing (``repro.telemetry.diff``).

The alignment contract under test: spans align by *name path* only — worker
placement (``pid-<n>``) and execution order must not change a diff — and a
path present in one run only is a finding ("added"/"removed"), not an error.
"""

import json
import math

import pytest

from repro.cli import main
from repro.telemetry import (
    TelemetrySession,
    diff_record,
    diff_runs,
    load_diff_record,
    render_diff,
    write_run_jsonl,
)
from repro.telemetry.diff import (
    DEFAULT_MIN_SECONDS,
    DIFF_FORMAT_VERSION,
    aggregate_by_path,
)
from repro.telemetry.spans import Span
from repro.util.errors import ConfigurationError


def _span(name, span_id, parent_id=None, duration=0.0, worker="", cpu=0.0, rss=0):
    return Span(
        name=name,
        span_id=span_id,
        parent_id=parent_id,
        start=0.0,
        duration=duration,
        worker=worker,
        cpu_time=cpu,
        rss_delta=rss,
    )


def _run(spans, run_id="tr-test", counters=None, meta=None):
    return {
        "run_id": run_id,
        "meta": meta or {},
        "spans": list(spans),
        "metrics": {"counters": dict(counters or {})},
    }


class TestAggregateByPath:
    def test_same_name_spans_fold_into_one_node(self):
        spans = [
            _span("root", 0, duration=3.0),
            _span("phase", 1, parent_id=0, duration=1.0, cpu=0.5),
            _span("phase", 2, parent_id=0, duration=2.0, cpu=0.25),
        ]
        nodes = aggregate_by_path(spans)
        assert set(nodes) == {"root", "root/phase"}
        phase = nodes["root/phase"]
        assert phase.count == 2
        assert phase.elapsed == pytest.approx(3.0)
        assert phase.cpu_time == pytest.approx(0.75)
        assert phase.depth == 1
        assert nodes["root"].depth == 0

    def test_worker_attribution_collected_but_not_keyed(self):
        spans = [
            _span("root", 0, duration=1.0),
            _span("cell", 1, parent_id=0, duration=0.5, worker="pid-11"),
            _span("cell", 2, parent_id=0, duration=0.5, worker="pid-22"),
        ]
        nodes = aggregate_by_path(spans)
        assert set(nodes) == {"root", "root/cell"}
        assert sorted(nodes["root/cell"].workers) == ["pid-11", "pid-22"]

    def test_orphan_parent_aggregates_as_root(self):
        nodes = aggregate_by_path([_span("lost", 5, parent_id=99, duration=1.0)])
        assert set(nodes) == {"lost"}
        assert nodes["lost"].depth == 0

    def test_parent_cycle_terminates(self):
        # Malformed input (a <-> b): the walk must break the cycle, not hang.
        spans = [
            _span("a", 0, parent_id=1, duration=0.1),
            _span("b", 1, parent_id=0, duration=0.1),
        ]
        nodes = aggregate_by_path(spans)
        assert len(nodes) == 2


class TestAlignment:
    def test_reordered_pid_subtrees_diff_flat(self):
        """Same cells, different workers + different order => no differences."""

        def run(order, workers):
            spans = [_span("campaign", 0, duration=2.0)]
            next_id = 1
            for cell, worker in zip(order, workers):
                spans.append(
                    _span(f"cell:{cell}", next_id, parent_id=0, duration=0.8,
                          worker=worker)
                )
                spans.append(
                    _span("sim:run", next_id + 1, parent_id=next_id,
                          duration=0.7, worker=worker)
                )
                next_id += 2
            return _run(spans)

        a = run(["x", "y"], ["pid-1", "pid-2"])
        b = run(["y", "x"], ["pid-9", "pid-8"])
        diff = diff_runs(a, b)
        assert all(d.direction == "flat" for d in diff.deltas)
        assert diff.deepest_regression is None
        assert "no significant differences" in render_diff(diff)

    def test_missing_subtree_reports_removed(self):
        cold = _run(
            [
                _span("campaign", 0, duration=1.0),
                _span("sim:run", 1, parent_id=0, duration=0.9),
            ],
            counters={"campaign.cells_computed": 4.0},
        )
        warm = _run(
            [_span("campaign", 0, duration=0.01)],
            counters={"campaign.cells_cached": 4.0},
        )
        diff = diff_runs(cold, warm)
        gone = diff.node("campaign/sim:run")
        assert gone.direction == "removed"
        assert gone.significant
        assert gone.count_b == 0
        # The cache-hit attribution the warm-rerun acceptance demands:
        assert diff.counter_deltas["campaign.cells_cached"] == 4.0
        assert diff.counter_deltas["campaign.cells_computed"] == -4.0
        assert "gone" in render_diff(diff)

    def test_new_subtree_reports_added_with_none_ratio(self):
        a = _run([_span("root", 0, duration=1.0)])
        b = _run(
            [
                _span("root", 0, duration=1.0),
                _span("extra", 1, parent_id=0, duration=0.5),
            ]
        )
        diff = diff_runs(a, b)
        added = diff.node("root/extra")
        assert added.direction == "added"
        assert math.isinf(added.delta_ratio)
        assert added.to_dict()["delta_ratio"] is None


class TestSignificance:
    def test_relative_threshold(self):
        a = _run([_span("root", 0, duration=1.0)])
        b = _run([_span("root", 0, duration=1.04)])
        assert diff_runs(a, b, threshold=0.05).node("root").direction == "flat"
        slower = _run([_span("root", 0, duration=1.2)])
        regressed = diff_runs(a, slower, threshold=0.05).node("root")
        assert regressed.direction == "regressed" and regressed.significant

    def test_absolute_floor_silences_tiny_spans(self):
        # 4x relative change, but the absolute delta is far below the floor.
        a = _run([_span("root", 0, duration=0.0002)])
        b = _run([_span("root", 0, duration=0.0008)])
        assert diff_runs(a, b).node("root").direction == "flat"
        assert DEFAULT_MIN_SECONDS == pytest.approx(1e-3)

    def test_improvement_direction_and_sorting(self):
        a = _run(
            [
                _span("root", 0, duration=3.0),
                _span("slow", 1, parent_id=0, duration=2.0),
                _span("quick", 2, parent_id=0, duration=1.0),
            ]
        )
        b = _run(
            [
                _span("root", 0, duration=1.5),
                _span("slow", 1, parent_id=0, duration=0.4),
                _span("quick", 2, parent_id=0, duration=0.9),
            ]
        )
        diff = diff_runs(a, b)
        improvements = diff.improvements
        assert [d.path for d in improvements[:2]] == ["root/slow", "root"]
        assert not diff.regressions

    def test_negative_threshold_rejected(self):
        run = _run([_span("root", 0, duration=1.0)])
        with pytest.raises(ConfigurationError):
            diff_runs(run, run, threshold=-0.1)


class TestDeepestRegression:
    def test_descends_while_child_explains_parent(self):
        def run(root, mid, leaf, other):
            return _run(
                [
                    _span("root", 0, duration=root),
                    _span("mid", 1, parent_id=0, duration=mid),
                    _span("leaf", 2, parent_id=1, duration=leaf),
                    _span("other", 3, parent_id=0, duration=other),
                ]
            )

        diff = diff_runs(run(2.0, 1.0, 0.8, 0.5), run(3.0, 1.95, 1.7, 0.55))
        assert diff.deepest_regression.path == "root/mid/leaf"

    def test_stops_when_no_child_explains_half(self):
        a = _run(
            [
                _span("root", 0, duration=2.0),
                _span("a", 1, parent_id=0, duration=0.5),
                _span("b", 2, parent_id=0, duration=0.5),
            ]
        )
        # root +1.0s but each child only +0.3s: the regression is diffuse,
        # so it pins on the root, not an arbitrary child.
        b = _run(
            [
                _span("root", 0, duration=3.0),
                _span("a", 1, parent_id=0, duration=0.8),
                _span("b", 2, parent_id=0, duration=0.8),
            ]
        )
        assert diff_runs(a, b).deepest_regression.path == "root"

    def test_none_when_nothing_regressed(self):
        run = _run([_span("root", 0, duration=1.0)])
        assert diff_runs(run, run).deepest_regression is None


class TestRecord:
    def _diff(self):
        a = _run([_span("root", 0, duration=1.0)], run_id="tr-a", meta={"v": 1})
        b = _run([_span("root", 0, duration=2.0)], run_id="tr-b", meta={"v": 2})
        return diff_runs(a, b)

    def test_record_round_trip(self, tmp_path):
        record = diff_record(self._diff())
        path = tmp_path / "diff.json"
        path.write_text(json.dumps(record))
        loaded = load_diff_record(str(path))
        assert loaded == json.loads(json.dumps(record))
        assert loaded["kind"] == "telemetry_diff"
        assert loaded["format_version"] == DIFF_FORMAT_VERSION
        assert loaded["run_a"]["run_id"] == "tr-a"
        assert loaded["n_regressions"] == 1
        assert loaded["deepest_regression"]["path"] == "root"
        assert loaded["total_elapsed_a"] == pytest.approx(1.0)
        assert loaded["total_elapsed_b"] == pytest.approx(2.0)

    def test_load_rejects_malformed(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_diff_record(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "something_else"}))
        with pytest.raises(ConfigurationError):
            load_diff_record(str(bad))
        future = tmp_path / "future.json"
        future.write_text(
            json.dumps({"kind": "telemetry_diff", "format_version": 99, "paths": []})
        )
        with pytest.raises(ConfigurationError):
            load_diff_record(str(future))

    def test_render_marks_significant_rows_and_verdict(self):
        text = render_diff(self._diff())
        assert "! root" in text
        assert "deepest regressed span: root" in text
        assert "baseline  tr-a" in text and "candidate tr-b" in text


class TestCliDiff:
    def _export(self, path, durations, meta):
        session = TelemetrySession()
        with session.span("root"):
            for name, duration in durations.items():
                session.record_span(name, duration)
        write_run_jsonl(str(path), session, meta=meta)

    def test_diff_command_exits_zero_and_writes_record(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        self._export(a, {"phase:x": 1.0, "phase:y": 0.5}, {"run": "a"})
        self._export(b, {"phase:x": 2.0, "phase:y": 0.5}, {"run": "b"})
        out_path = tmp_path / "nested" / "dir" / "diff.json"
        assert main(
            ["telemetry", "diff", str(a), str(b), "--output", str(out_path)]
        ) == 0
        rendered = capsys.readouterr().out
        assert "deepest regressed span: root/phase:x" in rendered
        record = load_diff_record(str(out_path))  # parent dirs were created
        assert record["deepest_regression"]["path"] == "root/phase:x"

    def test_diff_is_informational_even_on_regression(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        self._export(a, {"phase:x": 0.1}, {"run": "a"})
        self._export(b, {"phase:x": 5.0}, {"run": "b"})
        assert main(["telemetry", "diff", str(a), str(b)]) == 0
        capsys.readouterr()

    def test_diff_missing_file_errors(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        self._export(a, {"p": 0.1}, {"run": "a"})
        assert main(["telemetry", "diff", str(a), str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err
