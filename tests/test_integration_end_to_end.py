"""End-to-end integration tests crossing every layer of the library.

These tests exercise the paper's central claims at a very small scale:
the PN scheduler produces competitive schedules, learns communication costs
over time, and the whole pipeline (workload → cluster → scheduler →
simulation → metrics → reporting) is reproducible from a single seed.
"""

import numpy as np
import pytest

from repro import (
    ALL_SCHEDULER_NAMES,
    PNScheduler,
    default_pn_ga_config,
    generate_workload,
    heterogeneous_cluster,
    make_scheduler,
    normal_paper_workload,
    simulate_schedule,
)
from repro.experiments import compare_schedulers, get_scale
from repro.workloads import UniformSizes, WorkloadSpec


@pytest.fixture(scope="module")
def shootout():
    """One shared scheduler comparison at smoke scale used by several tests."""
    scale = get_scale("smoke").scaled(n_tasks=60, n_processors=5, repeats=2, max_generations=15)
    return compare_schedulers(
        normal_paper_workload(scale.n_tasks), scale, mean_comm_cost=3.0, seed=7
    )


class TestSchedulerShootout:
    def test_pn_is_top_half_by_makespan(self, shootout):
        rank = shootout.rank_of("PN", "makespan")
        assert rank <= len(ALL_SCHEDULER_NAMES) // 2 + 1

    def test_pn_beats_round_robin(self, shootout):
        assert (
            shootout.schedulers["PN"].makespan.mean
            < shootout.schedulers["RR"].makespan.mean
        )

    def test_efficiency_and_makespan_are_anticorrelated_in_ranking(self, shootout):
        # the best-makespan scheduler should not be the worst-efficiency one
        best = shootout.best_by_makespan()
        assert shootout.rank_of(best, "efficiency") <= len(ALL_SCHEDULER_NAMES) - 1


class TestPNLearning:
    def test_comm_estimates_learned_during_simulation(self):
        cluster = heterogeneous_cluster(5, mean_comm_cost=2.0, rng=0)
        tasks = generate_workload(normal_paper_workload(80), rng=1)
        scheduler = PNScheduler(
            n_processors=5, ga_config=default_pn_ga_config(max_generations=10), rng=2
        )
        simulate_schedule(scheduler, cluster, tasks, rng=3)
        # after the run, at least some links have been observed and the mean
        # estimate is in the right ballpark of the configured mean comm cost
        counts = scheduler.comm_estimator.observation_counts()
        assert counts.sum() > 0
        assert scheduler.comm_estimator.mean_estimate() > 0

    def test_multiple_batches_scheduled_dynamically(self):
        cluster = heterogeneous_cluster(5, mean_comm_cost=1.0, rng=0)
        tasks = generate_workload(normal_paper_workload(100), rng=4)
        scheduler = PNScheduler(
            n_processors=5, ga_config=default_pn_ga_config(max_generations=8), rng=5
        )
        result = simulate_schedule(scheduler, cluster, tasks, rng=6)
        assert result.scheduler_invocations > 1
        assert sum(result.batch_sizes) == 100


class TestReproducibility:
    def test_full_pipeline_reproducible(self):
        def run():
            cluster = heterogeneous_cluster(4, mean_comm_cost=1.0, rng=11)
            tasks = generate_workload(
                WorkloadSpec(n_tasks=40, sizes=UniformSizes(10, 1000)), rng=12
            )
            scheduler = make_scheduler("PN", n_processors=4, max_generations=8, rng=13)
            return simulate_schedule(scheduler, cluster, tasks, rng=14)

        a, b = run(), run()
        assert a.makespan == pytest.approx(b.makespan)
        assert a.efficiency == pytest.approx(b.efficiency)
        assert a.batch_sizes == b.batch_sizes

    def test_different_seeds_give_different_workloads(self):
        a = generate_workload(normal_paper_workload(30), rng=1).sizes()
        b = generate_workload(normal_paper_workload(30), rng=2).sizes()
        assert not np.array_equal(a, b)


class TestConservation:
    def test_work_conserved_across_every_scheduler(self):
        cluster = heterogeneous_cluster(4, mean_comm_cost=0.5, rng=0)
        tasks = generate_workload(WorkloadSpec(n_tasks=50, sizes=UniformSizes(10, 500)), rng=1)
        total = tasks.total_mflops()
        for name in ALL_SCHEDULER_NAMES:
            scheduler = make_scheduler(name, n_processors=4, batch_size=20, max_generations=6)
            result = simulate_schedule(scheduler, cluster, tasks, rng=2)
            assert result.metrics.total_mflops == pytest.approx(total), name
            assert result.metrics.tasks_completed == 50, name

    def test_efficiency_decomposition_sums_to_one(self):
        cluster = heterogeneous_cluster(4, mean_comm_cost=2.0, rng=3)
        tasks = generate_workload(WorkloadSpec(n_tasks=40, sizes=UniformSizes(10, 500)), rng=4)
        result = simulate_schedule(
            make_scheduler("EF", n_processors=4), cluster, tasks, rng=5
        )
        metrics = result.metrics
        total = metrics.efficiency + metrics.communication_fraction + metrics.idle_fraction
        assert total == pytest.approx(1.0, abs=1e-6)
