"""Run-to-run telemetry diffing: which *phase* regressed, not just which number.

``repro telemetry diff A.jsonl B.jsonl`` aligns two exported span trees
structurally and reports, per aligned node, the elapsed/count/resource
deltas from run A (the baseline) to run B (the candidate).  Alignment is by
**name-path**: every span maps to the ``/``-joined chain of span names from
its root (``campaign:ci/cell:scenario:x/sim:run/phase:drain``), and all
spans sharing a path aggregate into one node.  That makes the alignment

* *order-tolerant* — two runs that computed the same cells in different
  order (or on different workers: ``pid-<n>`` attribution is deliberately
  not part of the path) align node-for-node;
* *shape-tolerant* — a path present in only one run still shows up, with
  zero count on the other side (a warm campaign's missing ``sim:run``
  subtree is a *finding*: the delta is attributed to cache hits).

Significance is a relative threshold on elapsed time (default 5 %) with an
absolute epsilon floor so microsecond jitter in tiny spans never flags.
The *deepest regressed path* walks the tree from the worst top-level
regression downward, following significant regressions while they explain
the parent's slowdown — the output a CI gate wants when a throughput number
moved ("drain +38 %, schedule flat").

The machine-readable record (:func:`diff_record`, ``--output``) is a plain
JSON document that ``repro scorecard build --diff`` folds into
``SCORECARD.json``, so phase-level attribution lands in the same history
the throughput gates read.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..util.errors import ConfigurationError
from .spans import Span

__all__ = [
    "DIFF_FORMAT_VERSION",
    "DEFAULT_THRESHOLD",
    "DEFAULT_MIN_SECONDS",
    "PathNode",
    "PathDelta",
    "RunDiff",
    "aggregate_by_path",
    "diff_runs",
    "diff_record",
    "load_diff_record",
    "render_diff",
]

DIFF_FORMAT_VERSION = 1

#: Default relative elapsed-time change flagged as significant.
DEFAULT_THRESHOLD = 0.05
#: Absolute elapsed floor (seconds): below this, a node never flags — the
#: relative threshold alone would make microsecond jitter scream.
DEFAULT_MIN_SECONDS = 1e-3


@dataclass
class PathNode:
    """All spans of one run sharing one name-path, folded together."""

    path: str
    name: str
    depth: int
    count: int = 0
    elapsed: float = 0.0
    cpu_time: float = 0.0
    rss_delta: int = 0
    gc_collections: int = 0
    workers: List[str] = field(default_factory=list)


def aggregate_by_path(spans: Sequence[Span]) -> Dict[str, PathNode]:
    """Fold *spans* into per-name-path nodes.

    Parents resolve by span id; spans whose parent was dropped (session cap)
    or never existed aggregate as roots, matching the tolerance of
    :func:`~repro.telemetry.introspect.span_children`.  Worker attribution
    is collected per node but never keyed on, which is what makes worker
    subtrees order- and placement-tolerant.
    """
    by_id = {span.span_id: span for span in spans}
    paths: Dict[int, str] = {}

    def path_of(span: Span) -> str:
        cached = paths.get(span.span_id)
        if cached is not None:
            return cached
        # Walk to the root iteratively; a cycle (malformed input) breaks at
        # the first revisited id and treats that span as a root.
        chain: List[Span] = []
        seen = set()
        node: Optional[Span] = span
        while node is not None and node.span_id not in seen:
            seen.add(node.span_id)
            chain.append(node)
            node = (
                by_id.get(node.parent_id) if node.parent_id is not None else None
            )
        path = ""
        for link in reversed(chain):
            known = paths.get(link.span_id)
            if known is not None:
                path = known
                continue
            path = f"{path}/{link.name}" if path else link.name
            paths[link.span_id] = path
        return paths[span.span_id]

    nodes: Dict[str, PathNode] = {}
    for span in spans:
        path = path_of(span)
        node = nodes.get(path)
        if node is None:
            node = nodes[path] = PathNode(
                path=path, name=span.name, depth=path.count("/")
            )
        node.count += 1
        node.elapsed += span.duration
        node.cpu_time += span.cpu_time
        node.rss_delta += span.rss_delta
        node.gc_collections += span.gc_collections
        if span.worker and span.worker not in node.workers:
            node.workers.append(span.worker)
    return nodes


@dataclass
class PathDelta:
    """One aligned node's A→B change."""

    path: str
    name: str
    depth: int
    count_a: int
    count_b: int
    elapsed_a: float
    elapsed_b: float
    delta_seconds: float
    #: Relative change of elapsed time; ``inf`` for paths new in B.
    delta_ratio: float
    cpu_a: float
    cpu_b: float
    rss_a: int
    rss_b: int
    significant: bool
    #: "regressed" | "improved" | "flat" | "added" | "removed"
    direction: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "name": self.name,
            "depth": self.depth,
            "count_a": self.count_a,
            "count_b": self.count_b,
            "elapsed_a": self.elapsed_a,
            "elapsed_b": self.elapsed_b,
            "delta_seconds": self.delta_seconds,
            "delta_ratio": (
                None if self.delta_ratio == float("inf") else self.delta_ratio
            ),
            "cpu_a": self.cpu_a,
            "cpu_b": self.cpu_b,
            "rss_a": self.rss_a,
            "rss_b": self.rss_b,
            "significant": self.significant,
            "direction": self.direction,
        }


@dataclass
class RunDiff:
    """The full structural diff of two telemetry runs."""

    run_a: Dict[str, object]
    run_b: Dict[str, object]
    threshold: float
    min_seconds: float
    deltas: List[PathDelta]
    #: Counter deltas (B minus A), only counters present in either run.
    counter_deltas: Dict[str, float]
    deepest_regression: Optional[PathDelta]

    @property
    def regressions(self) -> List[PathDelta]:
        """Significant slowdowns, worst absolute delta first."""
        rows = [d for d in self.deltas if d.significant and d.direction == "regressed"]
        rows.sort(key=lambda d: d.delta_seconds, reverse=True)
        return rows

    @property
    def improvements(self) -> List[PathDelta]:
        """Significant speedups, largest absolute delta first."""
        rows = [d for d in self.deltas if d.significant and d.direction == "improved"]
        rows.sort(key=lambda d: d.delta_seconds)
        return rows

    def node(self, path: str) -> Optional[PathDelta]:
        """The delta row for *path* (``None`` when neither run has it)."""
        for delta in self.deltas:
            if delta.path == path:
                return delta
        return None

    @property
    def total_a(self) -> float:
        return sum(d.elapsed_a for d in self.deltas if d.depth == 0)

    @property
    def total_b(self) -> float:
        return sum(d.elapsed_b for d in self.deltas if d.depth == 0)


def _classify(
    elapsed_a: float, elapsed_b: float, threshold: float, min_seconds: float
) -> Tuple[float, bool, str]:
    """(relative delta, significant?, direction) for one aligned node."""
    delta = elapsed_b - elapsed_a
    if elapsed_a <= 0.0:
        ratio = float("inf") if elapsed_b > 0.0 else 0.0
    else:
        ratio = delta / elapsed_a
    big_enough = abs(delta) >= min_seconds and abs(ratio) >= threshold
    if elapsed_a <= 0.0 and elapsed_b > 0.0:
        return ratio, elapsed_b >= min_seconds, "added"
    if elapsed_b <= 0.0 and elapsed_a > 0.0:
        return ratio, elapsed_a >= min_seconds, "removed"
    if not big_enough:
        return ratio, False, "flat"
    return ratio, True, ("regressed" if delta > 0 else "improved")


def _deepest_regression(
    deltas: Sequence[PathDelta], threshold: float
) -> Optional[PathDelta]:
    """Follow the regression down the tree to the most specific culprit.

    Starting from the worst significant top-level regression, descend into
    the child whose slowdown explains at least half of the parent's, while
    such a child exists.  The stopping node is the deepest span path the
    regression can be pinned on — "the drain, not the whole campaign".
    """
    significant = [
        d for d in deltas if d.significant and d.direction in ("regressed", "added")
    ]
    if not significant:
        return None
    by_parent: Dict[str, List[PathDelta]] = {}
    for delta in significant:
        parent = delta.path.rsplit("/", 1)[0] if "/" in delta.path else ""
        by_parent.setdefault(parent, []).append(delta)
    roots = sorted(significant, key=lambda d: (d.depth, -d.delta_seconds))
    current = roots[0]
    while True:
        children = by_parent.get(current.path, [])
        candidates = [
            c for c in children if c.delta_seconds >= 0.5 * current.delta_seconds
        ]
        if not candidates:
            return current
        current = max(candidates, key=lambda c: c.delta_seconds)


def diff_runs(
    run_a: Dict[str, object],
    run_b: Dict[str, object],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> RunDiff:
    """Structurally align two loaded runs (see :func:`load_run_jsonl`).

    *run_a* is the baseline, *run_b* the candidate; positive deltas mean B
    is slower.  ``threshold`` is the relative elapsed change flagged as
    significant, ``min_seconds`` the absolute floor beneath which nothing
    flags.
    """
    if not (0.0 <= float(threshold)):
        raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
    nodes_a = aggregate_by_path(run_a.get("spans", []))
    nodes_b = aggregate_by_path(run_b.get("spans", []))
    deltas: List[PathDelta] = []
    for path in sorted(set(nodes_a) | set(nodes_b)):
        a = nodes_a.get(path)
        b = nodes_b.get(path)
        elapsed_a = a.elapsed if a else 0.0
        elapsed_b = b.elapsed if b else 0.0
        ratio, significant, direction = _classify(
            elapsed_a, elapsed_b, threshold, min_seconds
        )
        template = a if a is not None else b
        deltas.append(
            PathDelta(
                path=path,
                name=template.name,
                depth=template.depth,
                count_a=a.count if a else 0,
                count_b=b.count if b else 0,
                elapsed_a=elapsed_a,
                elapsed_b=elapsed_b,
                delta_seconds=elapsed_b - elapsed_a,
                delta_ratio=ratio,
                cpu_a=a.cpu_time if a else 0.0,
                cpu_b=b.cpu_time if b else 0.0,
                rss_a=a.rss_delta if a else 0,
                rss_b=b.rss_delta if b else 0,
                significant=significant,
                direction=direction,
            )
        )

    counters_a = dict(run_a.get("metrics", {}).get("counters", {}))
    counters_b = dict(run_b.get("metrics", {}).get("counters", {}))
    counter_deltas = {
        name: float(counters_b.get(name, 0.0)) - float(counters_a.get(name, 0.0))
        for name in sorted(set(counters_a) | set(counters_b))
    }

    return RunDiff(
        run_a={"run_id": run_a.get("run_id", ""), "meta": run_a.get("meta", {})},
        run_b={"run_id": run_b.get("run_id", ""), "meta": run_b.get("meta", {})},
        threshold=float(threshold),
        min_seconds=float(min_seconds),
        deltas=deltas,
        counter_deltas=counter_deltas,
        deepest_regression=_deepest_regression(deltas, threshold),
    )


def diff_record(diff: RunDiff) -> Dict[str, object]:
    """The machine-readable JSON document for one diff.

    This is what ``repro telemetry diff --output`` writes and what
    ``repro scorecard build --diff`` folds into the scorecard history.
    """
    return {
        "kind": "telemetry_diff",
        "format_version": DIFF_FORMAT_VERSION,
        "run_a": diff.run_a,
        "run_b": diff.run_b,
        "threshold": diff.threshold,
        "min_seconds": diff.min_seconds,
        "total_elapsed_a": diff.total_a,
        "total_elapsed_b": diff.total_b,
        "deepest_regression": (
            diff.deepest_regression.to_dict() if diff.deepest_regression else None
        ),
        "n_regressions": len(diff.regressions),
        "n_improvements": len(diff.improvements),
        "paths": [delta.to_dict() for delta in diff.deltas],
        "counter_deltas": diff.counter_deltas,
    }


def load_diff_record(path: str) -> Dict[str, object]:
    """Load (and validate the shape of) a diff record written by ``--output``."""
    if not os.path.exists(path):
        raise ConfigurationError(f"no telemetry diff record at {path!r}")
    with open(path, encoding="utf8") as handle:
        record = json.load(handle)
    if (
        not isinstance(record, dict)
        or record.get("kind") != "telemetry_diff"
        or record.get("format_version") != DIFF_FORMAT_VERSION
        or not isinstance(record.get("paths"), list)
    ):
        raise ConfigurationError(
            f"{os.path.basename(path)}: not a version-{DIFF_FORMAT_VERSION} "
            "telemetry diff record"
        )
    return record


def _fmt_ratio(delta: PathDelta) -> str:
    if delta.direction == "added":
        return "new"
    if delta.direction == "removed":
        return "gone"
    return f"{delta.delta_ratio:+.1%}"


def render_diff(diff: RunDiff, *, limit: int = 25) -> str:
    """Human-readable diff: header, per-path table, counters, the verdict."""
    lines = [
        f"baseline  {diff.run_a['run_id']}  {diff.run_a.get('meta', {})}",
        f"candidate {diff.run_b['run_id']}  {diff.run_b.get('meta', {})}",
        f"total root elapsed: {diff.total_a * 1000.0:.3f}ms -> "
        f"{diff.total_b * 1000.0:.3f}ms "
        f"(threshold {diff.threshold:.0%}, floor {diff.min_seconds * 1000.0:g}ms)",
        "",
        f"{'path':<56} {'count':>11} {'elapsed A':>12} {'elapsed B':>12} {'delta':>9}",
    ]
    # Significant rows always show; flat rows fill up to *limit* by weight.
    flagged = [d for d in diff.deltas if d.significant]
    flat = [d for d in diff.deltas if not d.significant]
    flat.sort(key=lambda d: max(d.elapsed_a, d.elapsed_b), reverse=True)
    shown = flagged + flat[: max(0, limit - len(flagged))]
    shown.sort(key=lambda d: d.path)
    for delta in shown:
        marker = "!" if delta.significant else " "
        counts = f"{delta.count_a}->{delta.count_b}"
        lines.append(
            f"{marker} {delta.path:<54} {counts:>11} "
            f"{delta.elapsed_a * 1000.0:>10.3f}ms {delta.elapsed_b * 1000.0:>10.3f}ms "
            f"{_fmt_ratio(delta):>9}"
        )
    hidden = len(diff.deltas) - len(shown)
    if hidden > 0:
        lines.append(f"  ... {hidden} flat path(s) not shown")
    moved = {n: d for n, d in diff.counter_deltas.items() if d}
    if moved:
        lines.append("")
        lines.append("counter deltas (B - A):")
        for name, delta in moved.items():
            lines.append(f"  {name}: {delta:+g}")
    lines.append("")
    if diff.deepest_regression is not None:
        deep = diff.deepest_regression
        lines.append(
            f"deepest regressed span: {deep.path} "
            f"({_fmt_ratio(deep)}, {deep.delta_seconds * 1000.0:+.3f}ms)"
        )
    elif diff.improvements:
        best = diff.improvements[0]
        lines.append(
            f"no regressions; largest improvement: {best.path} ({_fmt_ratio(best)})"
        )
    else:
        lines.append("no significant differences")
    return "\n".join(lines)
