"""Paper Fig. 8 — makespan per scheduler, uniform[10, 100] MFLOPs task sizes.

Paper claim reproduced here: with a narrow (1:10) task-size range most
schedulers produce similarly efficient schedules — the spread between the
best and worst scheduler is much smaller than with the wide range of Fig. 9 —
and PN remains among the best.
"""

import numpy as np
import pytest

from repro.experiments import figure8, figure9

from _bars import assert_common_bar_shape
from _shared import FigureCache

_cache = FigureCache()


@pytest.fixture
def result(scale, seed):
    return _cache.get("fig8", lambda: figure8(scale=scale, seed=seed))


def test_fig8_makespan_uniform_narrow(benchmark, scale, seed):
    outcome = _cache.run_once("fig8", lambda: figure8(scale=scale, seed=seed), benchmark)
    assert outcome.kind == "bars"


class TestShape:
    def test_common_bar_shape(self, result):
        assert_common_bar_shape(result, pn_max_rank=4)

    def test_schedulers_are_closer_together_than_wide_range(self, result, scale, seed):
        """The narrow 1:10 range equalises schedulers (compare against Fig. 9's spread)."""
        wide = _cache.get("fig9", lambda: figure9(scale=scale, seed=seed))
        def relative_spread(figure):
            values = np.array(list(figure.bar_values().values()))
            return float((values.max() - values.min()) / values.mean())
        assert relative_spread(result) <= relative_spread(wide) * 1.25
