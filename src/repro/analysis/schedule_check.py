"""Schedule validation: structural checks over a finished simulation.

The experiments hinge on the simulator behaving physically: a processor never
executes two tasks at once, every task is processed exactly once, no task
starts before it arrived, and the reported metrics follow from the trace.
:func:`validate_simulation` re-derives all of that from the raw trace and
returns a report listing any violations — it is used by the integration tests
and is handy when developing new schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..sim.metrics import compute_metrics
from ..sim.simulation import SimulationResult
from ..sim.trace import ExecutionTrace
from ..workloads.task import TaskSet

__all__ = ["ValidationIssue", "ValidationReport", "validate_trace", "validate_simulation"]

#: Numerical slack used when comparing floating-point times.
TIME_EPS = 1e-6


@dataclass(frozen=True)
class ValidationIssue:
    """One violated invariant."""

    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.code}] {self.message}"


@dataclass
class ValidationReport:
    """Outcome of validating a trace or simulation result."""

    issues: List[ValidationIssue] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.issues

    def add(self, code: str, message: str) -> None:
        """Record one violation."""
        self.issues.append(ValidationIssue(code=code, message=message))

    def summary(self) -> str:
        """One-line human readable summary."""
        status = "OK" if self.ok else f"{len(self.issues)} issue(s)"
        return f"schedule validation: {status} ({self.checks_run} checks)"


def validate_trace(trace: ExecutionTrace, tasks: Optional[TaskSet] = None) -> ValidationReport:
    """Check the physical consistency of an execution trace.

    Checks performed:

    * every task appears at most once (and, when *tasks* is given, exactly the
      submitted tasks appear, each exactly once);
    * per-record time ordering (arrival <= assignment <= dispatch <= start <= end);
    * no two executions overlap on the same processor;
    * when *tasks* is given, recorded sizes match the submitted sizes and no
      task is dispatched before its arrival time.
    """
    report = ValidationReport()

    # -- uniqueness / coverage ---------------------------------------------------------
    report.checks_run += 1
    seen_ids = [record.task_id for record in trace]
    if len(set(seen_ids)) != len(seen_ids):
        duplicates = sorted({tid for tid in seen_ids if seen_ids.count(tid) > 1})
        report.add("duplicate-task", f"tasks executed more than once: {duplicates}")

    if tasks is not None:
        report.checks_run += 1
        submitted = set(tasks.task_ids)
        executed = set(seen_ids)
        missing = submitted - executed
        unknown = executed - submitted
        if missing:
            report.add("missing-task", f"submitted tasks never executed: {sorted(missing)[:10]}")
        if unknown:
            report.add("unknown-task", f"executed tasks never submitted: {sorted(unknown)[:10]}")

    # -- per-record consistency -----------------------------------------------------------
    report.checks_run += 1
    for record in trace:
        ordered = (
            record.arrival_time
            <= record.assigned_time + TIME_EPS
            and record.assigned_time <= record.dispatch_time + TIME_EPS
            and record.dispatch_time <= record.exec_start + TIME_EPS
            and record.exec_start <= record.exec_end + TIME_EPS
        )
        if not ordered:
            report.add(
                "record-ordering",
                f"task {record.task_id}: inconsistent times "
                f"({record.arrival_time}, {record.assigned_time}, {record.dispatch_time}, "
                f"{record.exec_start}, {record.exec_end})",
            )
        if tasks is not None and record.task_id in tasks:
            task = tasks.get(record.task_id)
            if abs(task.size_mflops - record.size_mflops) > TIME_EPS:
                report.add(
                    "size-mismatch",
                    f"task {record.task_id}: submitted {task.size_mflops} MFLOPs but "
                    f"recorded {record.size_mflops}",
                )
            if record.dispatch_time + TIME_EPS < task.arrival_time:
                report.add(
                    "dispatch-before-arrival",
                    f"task {record.task_id} dispatched at {record.dispatch_time} "
                    f"before its arrival at {task.arrival_time}",
                )

    # -- no overlapping executions on one processor -----------------------------------------
    report.checks_run += 1
    for proc in range(trace.n_processors):
        records = trace.records_for(proc)
        for earlier, later in zip(records, records[1:]):
            if later.exec_start + TIME_EPS < earlier.exec_end:
                report.add(
                    "overlap",
                    f"processor {proc}: task {later.task_id} starts at {later.exec_start} "
                    f"before task {earlier.task_id} ends at {earlier.exec_end}",
                )
    return report


def validate_simulation(
    result: SimulationResult, tasks: Optional[TaskSet] = None
) -> ValidationReport:
    """Validate a full simulation result: its trace plus its reported metrics."""
    report = validate_trace(result.trace, tasks)

    report.checks_run += 1
    recomputed = compute_metrics(result.trace)
    if not np.isclose(recomputed.makespan, result.makespan, rtol=1e-9, atol=1e-9):
        report.add(
            "makespan-mismatch",
            f"reported makespan {result.makespan} differs from trace-derived "
            f"{recomputed.makespan}",
        )
    if not np.isclose(recomputed.efficiency, result.efficiency, rtol=1e-9, atol=1e-9):
        report.add(
            "efficiency-mismatch",
            f"reported efficiency {result.efficiency} differs from trace-derived "
            f"{recomputed.efficiency}",
        )

    report.checks_run += 1
    if result.metrics.tasks_completed != len(result.trace):
        report.add(
            "count-mismatch",
            f"metrics report {result.metrics.tasks_completed} completions but the trace has "
            f"{len(result.trace)} records",
        )
    if tasks is not None and result.n_tasks != len(tasks):
        report.add(
            "task-count-mismatch",
            f"simulation claims {result.n_tasks} tasks but {len(tasks)} were submitted",
        )
    return report
