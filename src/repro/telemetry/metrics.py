"""Counters, gauges and numpy-binned histograms for telemetry sessions.

The metrics registry complements spans: spans answer *where did the time
go*, metrics answer *how much work happened* (events popped, tombstones
skipped, kernel batch sizes, queue depths, steal counts).  Instruments are
get-or-create by name, snapshot to plain JSON-able dicts, and merge
additively across process boundaries — counters and histogram bins sum,
gauges are last-writer-wins.

Histograms are deliberately cheap: fixed bin edges held as a sorted numpy
array, observations binned with ``searchsorted`` and accumulated with
``bincount``, so recording a whole batch-size or queue-depth column is one
vectorised call, not a Python loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_EDGES"]

#: Default histogram bin edges: a coarse geometric ladder that covers batch
#: sizes, queue depths and per-wave counts at every experiment scale.
DEFAULT_EDGES = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
                 1000.0, 2500.0, 5000.0, 10000.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add *amount* (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins, also across merges)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: Union[int, float]) -> None:
        """Record the gauge's current value."""
        self.value = float(value)


class Histogram:
    """Fixed-bin histogram over numpy edges.

    ``edges`` are the sorted upper-open bin boundaries; bin ``i`` counts
    observations in ``(edges[i-1], edges[i]]`` with an extra overflow bin
    past the last edge, so ``counts`` has ``len(edges) + 1`` entries.
    """

    __slots__ = ("name", "edges", "counts", "total", "sum")

    def __init__(self, name: str, edges: Optional[Iterable[float]] = None) -> None:
        self.name = name
        self.edges = np.asarray(
            sorted(edges) if edges is not None else DEFAULT_EDGES, dtype=float
        )
        if self.edges.size == 0:
            raise ValueError(f"histogram {name!r} needs at least one bin edge")
        self.counts = np.zeros(self.edges.size + 1, dtype=np.int64)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        self.counts[int(np.searchsorted(self.edges, value, side="left"))] += 1
        self.total += 1
        self.sum += float(value)

    def observe_many(self, values: Iterable[Union[int, float]]) -> None:
        """Record a whole batch of observations in one vectorised pass."""
        array = np.asarray(values, dtype=float).ravel()
        if array.size == 0:
            return
        indices = np.searchsorted(self.edges, array, side="left")
        self.counts += np.bincount(indices, minlength=self.counts.size).astype(np.int64)
        self.total += int(array.size)
        self.sum += float(array.sum())

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.total if self.total else 0.0


class MetricsRegistry:
    """Named instruments, get-or-create, snapshot/merge-able."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called *name* (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name* (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, edges: Optional[Iterable[float]] = None
    ) -> Histogram:
        """The histogram called *name* (created on first use with *edges*)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, edges)
        return instrument

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- snapshot / merge ---------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """Plain JSON-able form of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "edges": h.edges.tolist(),
                    "counts": h.counts.tolist(),
                    "total": h.total,
                    "sum": h.sum,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Dict[str, Dict]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this registry.

        Counters and histogram bins add; gauges take the incoming value.  A
        histogram whose recorded edges differ from the local instrument's
        folds its total/sum only (bins from different ladders cannot be
        summed meaningfully) — that only happens if two code paths name one
        histogram with different edges, which is a bug worth surfacing in
        the mismatched totals rather than an excuse to fail the run.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in snapshot.get("histograms", {}).items():
            edges = np.asarray(payload["edges"], dtype=float)
            local = self.histogram(name, edges)
            if local.edges.size == edges.size and np.array_equal(local.edges, edges):
                local.counts += np.asarray(payload["counts"], dtype=np.int64)
            local.total += int(payload["total"])
            local.sum += float(payload["sum"])

    def summary_rows(self) -> List[Dict[str, object]]:
        """Flat rows for rendering (name, kind, value/mean/total)."""
        rows: List[Dict[str, object]] = []
        for name, counter in sorted(self._counters.items()):
            rows.append({"name": name, "kind": "counter", "value": counter.value})
        for name, gauge in sorted(self._gauges.items()):
            rows.append({"name": name, "kind": "gauge", "value": gauge.value})
        for name, histogram in sorted(self._histograms.items()):
            rows.append(
                {
                    "name": name,
                    "kind": "histogram",
                    "value": histogram.total,
                    "mean": histogram.mean,
                }
            )
        return rows
