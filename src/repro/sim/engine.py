"""Minimal discrete-event engine: a time-ordered event queue and a run loop.

The hot path is array-backed: the heap holds plain ``(time, seq, push_index,
kind_code, event)`` tuples (tuple comparison never falls through to the event
object because ``push_index`` is unique), handlers live in a list indexed by
the dense :data:`~repro.sim.events.KIND_CODES` integer of each kind, and
cancellation is a tombstone set consulted lazily by :meth:`EventQueue.pop`
and :meth:`EventQueue.peek` — the heap is never re-ordered or rebuilt.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Set, Tuple

from ..util.errors import SimulationError
from .events import CODED_KINDS, KIND_CODES, Event, EventKind

__all__ = ["EventQueue", "DiscreteEventEngine", "budget_error"]

#: Number of distinct event kinds (sizes the engine's handler table).
_N_KINDS = len(CODED_KINDS)


def budget_error(max_events: int) -> SimulationError:
    """The event-storm error both simulation backends raise identically."""
    return SimulationError(
        f"event budget of {max_events} exceeded; "
        "the simulation is likely stuck in an event loop"
    )


class EventQueue:
    """A priority queue of :class:`Event` objects ordered by time then insertion.

    Internally an array-backed heap of ``(time, seq, push_index, kind_code,
    event)`` records; cancelled events are tombstoned by their ``seq`` and
    skipped lazily on :meth:`pop` *and* :meth:`peek` without re-heapifying.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, int, Event]] = []
        self._pushed = 0
        self._tombstones: Set[int] = set()
        #: Cancelled records discarded by lazy skipping (telemetry reads
        #: this once per run; the skip loop itself stays branch-free).
        self.tombstones_skipped = 0

    def push(self, event: Event) -> None:
        """Insert an event."""
        heapq.heappush(
            self._heap,
            (event.time, event.seq, self._pushed, KIND_CODES[event.kind], event),
        )
        self._pushed += 1

    def cancel(self, seq: int) -> None:
        """Tombstone the event with sequence number *seq*.

        The record stays in the heap but is skipped (and discarded) by the
        next :meth:`pop` or :meth:`peek` that reaches it.  Cancelling an
        unknown or already-popped sequence number has no effect on queue
        behaviour; such stale tombstones are pruned lazily by
        :meth:`__len__` so they cannot accumulate.
        """
        self._tombstones.add(seq)

    def _skip_tombstones(self) -> None:
        heap = self._heap
        tombstones = self._tombstones
        while heap and heap[0][1] in tombstones:
            tombstones.discard(heap[0][1])
            heapq.heappop(heap)
            self.tombstones_skipped += 1

    def pop(self) -> Event:
        """Remove and return the earliest live event (raises when empty)."""
        return self.pop_record()[4]

    def pop_record(self) -> Tuple[float, int, int, int, Event]:
        """Remove and return the earliest live heap record (raises when empty).

        The record is ``(time, seq, push_index, kind_code, event)``;
        ``kind_code`` lets the engine's run loop index its handler table
        without re-hashing the event's kind per event.
        """
        self._skip_tombstones()
        if not self._heap:
            raise SimulationError("cannot pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Return the earliest live event without removing it (raises when empty).

        Tombstoned (cancelled) records are discarded on the way, exactly as
        :meth:`pop` does, so a cancelled head never masks the next live event.
        """
        self._skip_tombstones()
        if not self._heap:
            raise SimulationError("cannot peek into an empty event queue")
        return self._heap[0][4]

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events in the queue.

        Tombstoned records that are not at the heap head still occupy heap
        slots, so they are counted out explicitly.  The scan only happens
        while cancellations are actually outstanding, and it prunes
        tombstones for sequence numbers no longer in the heap (stale
        cancels of already-popped events), so repeated calls stay O(1)
        once the outstanding cancellations clear.
        """
        self._skip_tombstones()
        if not self._tombstones:
            return len(self._heap)
        self._tombstones &= {record[1] for record in self._heap}
        return len(self._heap) - len(self._tombstones)

    def __bool__(self) -> bool:
        self._skip_tombstones()
        return bool(self._heap)


class DiscreteEventEngine:
    """Run loop: pops events in time order and dispatches them to handlers.

    Handlers are registered per :class:`EventKind`; each handler receives the
    event and may push follow-up events through :meth:`schedule`.  The engine
    enforces that time never goes backwards and guards against runaway event
    storms with a configurable event budget.

    Each engine owns its own event sequence counter, so the ``(time, seq)``
    tie-break ordering of simultaneous events is deterministic per simulation
    and independent of any other simulation run in the same process.
    """

    def __init__(self, max_events: int = 10_000_000) -> None:
        if max_events <= 0:
            raise SimulationError(f"max_events must be positive, got {max_events}")
        self.queue = EventQueue()
        self.now = 0.0
        self.processed_events = 0
        self.max_events = int(max_events)
        self._handler_table: List[Optional[Callable[[Event], None]]] = [None] * _N_KINDS
        self._registration_order: List[EventKind] = []
        self._sequence = 0

    def register(self, kind: EventKind, handler: Callable[[Event], None]) -> None:
        """Register the handler invoked for every event of *kind*."""
        if self._handler_table[KIND_CODES[kind]] is None:
            self._registration_order.append(kind)
        self._handler_table[KIND_CODES[kind]] = handler

    def registered_kinds(self) -> List[EventKind]:
        """Event kinds that currently have a handler (in registration order)."""
        return list(self._registration_order)

    def schedule(self, time: float, kind: EventKind, **data) -> Event:
        """Create an event at *time* and insert it into the queue.

        Raises a :class:`SimulationError` immediately when *kind* has no
        registered handler: failing here, with the scheduling call still on
        the stack, is far easier to diagnose than the same failure surfacing
        later from :meth:`run` with no hint of who produced the event.
        """
        if self._handler_table[KIND_CODES[kind]] is None:
            registered = sorted(k.value for k in self.registered_kinds())
            raise SimulationError(
                f"cannot schedule event kind {kind.value!r}: no handler is registered "
                f"for it (registered kinds: {registered or 'none'}); call "
                f"engine.register({kind!s}, handler) before scheduling"
            )
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule an event at t={time} before the current time {self.now}"
            )
        seq = self._sequence
        self._sequence = seq + 1
        event = Event.make(max(time, self.now), kind, seq=seq, **data)
        self.queue.push(event)
        return event

    def cancel(self, event: Event) -> None:
        """Revoke a previously scheduled event: it is skipped when popped.

        Cancellation is by tombstone (the heap is not re-ordered); cancelled
        events do not count towards the processed-event budget.
        """
        self.queue.cancel(event.seq)

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue empties (or simulated *until* is reached).

        Returns the simulation time of the last processed event.
        """
        queue = self.queue
        table = self._handler_table
        while queue:
            if until is not None and queue.peek().time > until:
                break
            time, _, _, code, event = queue.pop_record()
            if time < self.now - 1e-9:
                raise SimulationError(
                    f"event at t={time} is earlier than current time {self.now}"
                )
            if time > self.now:
                self.now = time
            handler = table[code]
            if handler is None:
                registered = sorted(k.value for k in self.registered_kinds())
                raise SimulationError(
                    f"no handler registered for event kind {event.kind.value!r} "
                    f"(registered kinds: {registered or 'none'})"
                )
            handler(event)
            self.processed_events += 1
            if self.processed_events > self.max_events:
                raise budget_error(self.max_events)
        return self.now
