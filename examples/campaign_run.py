#!/usr/bin/env python3
"""Quickstart: durable, resumable experiment campaigns.

Declares a campaign composing one figure, a fault-injection scenario matrix
and a GA parameter sweep, runs it against a content-addressed result store,
then demonstrates the two properties the subsystem exists for:

* **resume bit-identity** — the campaign is first "killed" after two
  computed cells (``max_cells``), then resumed; the resumed aggregates are
  asserted bit-identical to an uninterrupted reference run;
* **warm-store rerun** — running the same campaign again computes zero
  cells, because every cell's cache key (spec + seed entropy + backends +
  code-contract version) is already present.

The same functionality is available from the CLI::

    python -m repro.cli campaigns run --store /tmp/store --name demo \\
        --figures fig6 --scenarios failure-storm --scale smoke --jobs 2
    python -m repro.cli campaigns status --store /tmp/store demo
    python -m repro.cli campaigns resume --store /tmp/store demo

Run with::

    python examples/campaign_run.py [--jobs 2] [--executor async] [--seed 7]
"""

from __future__ import annotations

import argparse
import tempfile

from repro.campaigns import CampaignSpec, ResultStore, SweepSpec, run_campaign


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument(
        "--executor",
        default="process",
        choices=("serial", "process", "async"),
        help="executor family sharding the cells",
    )
    parser.add_argument("--scale", default="smoke", help="experiment scale preset")
    parser.add_argument("--seed", type=int, default=7, help="master random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    spec = CampaignSpec(
        name="demo-campaign",
        scale=args.scale,
        seed=args.seed,
        figures=("fig6",),
        scenarios=("failure-storm", "steady-state"),
        schedulers=("PN", "EF", "LL"),
        repeats=2,
        sweeps=(SweepSpec(parameter="n_rebalances", values=(0, 1, 5), repeats=2),),
    )

    with tempfile.TemporaryDirectory() as reference_dir, \
            tempfile.TemporaryDirectory() as store_dir:
        # Reference: one uninterrupted serial run.
        reference = run_campaign(spec, ResultStore(reference_dir))
        print(
            f"reference run: {reference.computed} cells computed "
            f"({reference.executor})"
        )

        # 1. Simulate a mid-campaign kill: stop after two computed cells.
        store = ResultStore(store_dir)
        partial = run_campaign(
            spec,
            store,
            jobs=args.jobs,
            executor_kind=args.executor,
            max_cells=2,
        )
        print(
            f"interrupted run: {partial.computed}/{partial.total_cells} cells, "
            f"reason={partial.interrupt_reason!r}, manifest={partial.manifest_path}"
        )

        # 2. Resume: only the missing cells are computed...
        resumed = run_campaign(spec, store, jobs=args.jobs, executor_kind=args.executor)
        print(
            f"resumed run: {resumed.computed} computed, {resumed.cached} cached "
            f"(of {resumed.total_cells})"
        )
        # ...and the aggregates are bit-identical to the uninterrupted run.
        assert resumed.aggregates == reference.aggregates
        print("resume bit-identity: aggregates equal the uninterrupted run")

        # 3. Warm store: a rerun computes nothing at all.
        warm = run_campaign(spec, store)
        assert warm.computed == 0 and warm.cached == warm.total_cells
        assert warm.aggregates == reference.aggregates
        print(f"warm rerun: 0 computed, {warm.cached} cached — store hit on every cell")

        # The scenario cells carry per-phase cost attribution for perf work.
        timing = warm.timing["scenarios"]["failure-storm"]["PN"]
        print(
            "failure-storm/PN phases: "
            f"scheduling={timing['scheduling_mean_seconds']:.4f}s "
            f"dispatch={timing['dispatch_mean_seconds']:.4f}s "
            f"drain={timing['drain_mean_seconds']:.4f}s"
        )


if __name__ == "__main__":
    main()
