"""Cluster models: processors, availability variation, network links, topologies."""

from .cluster import Cluster
from .linpack import (
    LinpackResult,
    benchmark_cluster_rates,
    benchmark_processor,
    linpack_flop_count,
)
from .network import CommLink, Network, build_random_network
from .processor import Processor
from .topology import (
    heterogeneous_cluster,
    homogeneous_cluster,
    paper_cluster,
    varying_availability_cluster,
)
from .variation import (
    AvailabilityModel,
    ConstantAvailability,
    RandomWalkAvailability,
    SinusoidalAvailability,
    StepAvailability,
    TraceAvailability,
    availability_from_name,
)

__all__ = [
    "Cluster",
    "Processor",
    "CommLink",
    "Network",
    "build_random_network",
    "AvailabilityModel",
    "ConstantAvailability",
    "SinusoidalAvailability",
    "StepAvailability",
    "RandomWalkAvailability",
    "TraceAvailability",
    "availability_from_name",
    "LinpackResult",
    "linpack_flop_count",
    "benchmark_processor",
    "benchmark_cluster_rates",
    "homogeneous_cluster",
    "heterogeneous_cluster",
    "paper_cluster",
    "varying_availability_cluster",
]
