"""Seeded random-number helpers.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  The helpers in
this module normalise those inputs and derive statistically independent child
streams, so that experiments remain reproducible even when the number of
random draws made by one component changes.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "RNGLike",
    "ensure_rng",
    "spawn_rngs",
    "derive_rng",
    "random_seed",
]

#: Accepted forms of randomness sources throughout the library.
RNGLike = Union[None, int, np.integer, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RNGLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *rng*.

    Parameters
    ----------
    rng:
        ``None`` for fresh OS entropy, an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator (returned
        unchanged).

    Raises
    ------
    TypeError
        If *rng* is not one of the accepted types.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"expected None, int, SeedSequence or numpy Generator, got {type(rng)!r}"
    )


def spawn_rngs(rng: RNGLike, n: int) -> list[np.random.Generator]:
    """Derive *n* statistically independent generators from *rng*.

    The parent generator (if one is passed) is consumed for a single draw to
    obtain a seed, so repeated calls with the same parent produce different
    children while remaining reproducible for a seeded parent.
    """
    if n < 0:
        raise ValueError(f"number of child generators must be >= 0, got {n}")
    parent = ensure_rng(rng)
    seed = int(parent.integers(0, 2**63 - 1))
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def derive_rng(rng: RNGLike, *keys: Union[int, str]) -> np.random.Generator:
    """Derive a child generator identified by *keys* without consuming *rng*.

    This is useful when a deterministic sub-stream is needed for a named
    component (for example the availability model of processor 7), such that
    adding new components does not shift the random draws of existing ones.

    Integer keys are used directly; string keys are hashed with a stable
    (non-salted) scheme.
    """
    material: list[int] = []
    for key in keys:
        if isinstance(key, (int, np.integer)):
            material.append(int(key) & 0xFFFFFFFF)
        elif isinstance(key, str):
            acc = 2166136261
            for ch in key.encode("utf8"):
                acc = ((acc ^ ch) * 16777619) & 0xFFFFFFFF
            material.append(acc)
        else:
            raise TypeError(f"keys must be int or str, got {type(key)!r}")
    if isinstance(rng, np.random.Generator):
        base = int(rng.bit_generator.seed_seq.entropy or 0)  # type: ignore[union-attr]
    elif isinstance(rng, (int, np.integer)):
        base = int(rng)
    elif rng is None:
        base = 0
    elif isinstance(rng, np.random.SeedSequence):
        base = int(rng.entropy or 0)
    else:
        raise TypeError(f"unsupported rng source {type(rng)!r}")
    seq = np.random.SeedSequence([base & 0xFFFFFFFFFFFF, *material])
    return np.random.default_rng(seq)


def random_seed(rng: RNGLike = None) -> int:
    """Draw a fresh integer seed (suitable for child components) from *rng*."""
    return int(ensure_rng(rng).integers(0, 2**31 - 1))
