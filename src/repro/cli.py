"""Command-line interface: reproduce the paper's figures from a terminal.

Usage examples::

    python -m repro.cli list
    python -m repro.cli figure5 --scale small --seed 42
    python -m repro.cli all --scale smoke --output results/
    python -m repro.cli compare --workload normal --comm-cost 20 --scale small
    python -m repro.cli fig6 --scale medium --jobs 4
    python -m repro.cli scenarios list
    python -m repro.cli scenarios run failure-storm --scale smoke --jobs 2
    python -m repro.cli campaigns run --store results/store --name nightly \\
        --figures fig5 fig6 --scenarios failure-storm --scale small --jobs 4
    python -m repro.cli campaigns status --store results/store nightly
    python -m repro.cli campaigns resume --store results/store nightly
    python -m repro.cli traces make bursty --tasks 100000 --output bursty.csv
    python -m repro.cli traces record --scenario failure-storm --output fs.csv
    python -m repro.cli compare --workload trace:bursty.csv --scale small
    python -m repro.cli scorecard build
    python -m repro.cli scorecard check artifacts/bench-records

``--jobs N`` shards the independent repeats of an experiment (or the cells
of a scenario matrix / campaign) across ``N`` worker processes (see
:mod:`repro.parallel`); ``--executor async`` swaps in the work-stealing
pool.  All stochastic results are bit-identical to a serial run with the
same seed (only measured wall-clock values, e.g. fig4's seconds, vary with
contention).  Campaigns persist every completed cell to a content-addressed
store, so re-runs and resumes only compute the missing delta.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from .analysis.scorecard import (
    check_records,
    find_bench_records,
    fold_into_history,
    load_bench_record,
    load_history,
    manifest_record,
    new_history,
    render_scorecard_markdown,
    save_history,
    telemetry_diff_record,
)
from .campaigns import (
    CampaignSpec,
    ResultStore,
    SweepSpec,
    load_manifest,
    run_campaign,
)
from .experiments.config import SCALES, get_scale
from .experiments.figures import FIGURES, list_figures, run_figure
from .experiments.reporting import (
    comparison_table,
    experiment_summary,
    figure_report,
    scenario_matrix_table,
)
from .experiments.runner import compare_schedulers
from .ga.kernels import BACKEND_NAMES
from .io.results import save_scenario_matrix_json
from .parallel import EXECUTOR_KINDS, executor_from_jobs
from .scenarios import (
    ScenarioCell,
    cell_workload,
    get_scenario,
    make_all_scenarios,
    run_scenario_matrix,
    scenario_names,
)
from .schedulers.kernels import POLICY_BACKEND_NAMES
from .schedulers.registry import ALL_SCHEDULER_NAMES
from .sim.simulation import SIM_BACKENDS
from .telemetry import (
    LOG_LEVELS,
    TOP_SPAN_KEYS,
    TelemetrySession,
    configure_logging,
    critical_path,
    diff_runs,
    load_run_jsonl,
    render_diff,
    render_tree,
    summarize_spans,
    telemetry_session,
    top_spans,
    write_run_jsonl,
)
from .telemetry.diff import DEFAULT_THRESHOLD, diff_record as make_diff_record
from .telemetry.monitor import watch as watch_status
from .util.errors import ExperimentInterrupted, ReproError
from .workloads.generator import generate_workload
from .workloads.suites import paper_workloads, workload_by_name
from .workloads.traces import (
    SYNTHETIC_TRACE_KINDS,
    load_trace,
    save_trace,
    trace_from_tasks,
    trace_sha256,
)

__all__ = ["build_parser", "main"]

logger = logging.getLogger("repro.cli")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-scheduler",
        description=(
            "Reproduce the experiments of Page & Naughton (2005): dynamic GA task "
            "scheduling for heterogeneous distributed computing."
        ),
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=LOG_LEVELS,
        help="logging verbosity for status output on stderr (default: info)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit status logs as one JSON object per line instead of text",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the reproducible figures and available scales")

    for figure_id in list_figures():
        fig_parser = sub.add_parser(
            figure_id, help=f"reproduce the paper's {figure_id.replace('fig', 'figure ')}"
        )
        _add_common_options(fig_parser)

    all_parser = sub.add_parser("all", help="reproduce every figure and print a summary")
    _add_common_options(all_parser)
    all_parser.add_argument(
        "--output", default=None, help="directory to write one .txt report per figure"
    )

    cmp_parser = sub.add_parser(
        "compare", help="compare all schedulers on one workload / communication cost"
    )
    _add_common_options(cmp_parser)
    cmp_parser.add_argument(
        "--workload",
        default="normal",
        help=(
            "which of the paper's workload shapes to use "
            f"({', '.join(sorted(paper_workloads(1)))}), or trace:<path> to "
            "replay a recorded arrival trace (see `repro-scheduler traces`)"
        ),
    )
    cmp_parser.add_argument(
        "--comm-cost", type=float, default=20.0, help="mean per-link communication cost (s)"
    )
    cmp_parser.add_argument(
        "--tasks", type=int, default=None, help="override the number of tasks"
    )

    scen_parser = sub.add_parser(
        "scenarios", help="cluster-dynamics scenarios (fault injection, elasticity)"
    )
    scen_sub = scen_parser.add_subparsers(dest="scenario_command", required=True)
    scen_list = scen_sub.add_parser(
        "list", help="list the scenario library with descriptions and dynamics"
    )
    scen_list.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES.keys()),
        help="scale at which to size the listed scenarios (default: small)",
    )
    scen_run = scen_sub.add_parser(
        "run", help="run one or more scenarios as a (scenario x scheduler x repeat) matrix"
    )
    scen_run.add_argument(
        "names",
        nargs="+",
        metavar="SCENARIO",
        help=f"scenario names from the library: {', '.join(scenario_names())}",
    )
    _add_common_options(scen_run)
    scen_run.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="independent repeats per (scenario, scheduler) cell "
        "(default: the scale preset's repeat count)",
    )
    scen_run.add_argument(
        "--schedulers",
        nargs="+",
        default=None,
        metavar="NAME",
        choices=ALL_SCHEDULER_NAMES,
        help="scheduler subset to run (default: each scenario's own set)",
    )
    scen_run.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the aggregate matrix as JSON to this path",
    )
    scen_run.add_argument(
        "--status-file",
        default=None,
        metavar="PATH",
        help=(
            "maintain a live run-status file there while the matrix runs "
            "(watch it with `repro-scheduler campaigns watch --status-file PATH`)"
        ),
    )

    camp_parser = sub.add_parser(
        "campaigns",
        help="durable, resumable experiment campaigns over a content-addressed store",
    )
    camp_sub = camp_parser.add_subparsers(dest="campaign_command", required=True)
    camp_run = camp_sub.add_parser(
        "run", help="run a campaign (cells already in the store are skipped)"
    )
    _add_campaign_store_option(camp_run)
    camp_run.add_argument(
        "--name",
        default="default",
        help="campaign name (manifest id inside the store; default: 'default')",
    )
    camp_run.add_argument(
        "--figures",
        nargs="+",
        default=None,
        metavar="FIG",
        choices=list(FIGURES),
        help="figure ids to include (e.g. fig5 fig6)",
    )
    camp_run.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        metavar="SCENARIO",
        help=f"scenario names to include: {', '.join(scenario_names())}",
    )
    camp_run.add_argument(
        "--schedulers",
        nargs="+",
        default=None,
        metavar="NAME",
        choices=ALL_SCHEDULER_NAMES,
        help="scheduler subset for the scenario matrix (default: each scenario's set)",
    )
    camp_run.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="scenario-matrix repeats per (scenario, scheduler) cell",
    )
    camp_run.add_argument(
        "--sweep",
        nargs="+",
        default=None,
        metavar=("PARAMETER", "VALUE"),
        help="GA parameter sweep: a GAConfig field name followed by its values "
        "(e.g. --sweep n_rebalances 0 1 5)",
    )
    camp_run.add_argument(
        "--sweep-repeats",
        type=int,
        default=None,
        metavar="N",
        help="GA runs per swept value (default: the scale preset's repeat "
        "count; independent of the scenario-matrix --repeats)",
    )
    _add_common_options(camp_run)
    _add_campaign_run_options(camp_run)
    camp_status = camp_sub.add_parser(
        "status", help="show a campaign manifest (cells, timings, aggregates)"
    )
    _add_campaign_store_option(camp_status)
    camp_status.add_argument(
        "name", nargs="?", default=None, help="campaign name (default: list campaigns)"
    )
    camp_resume = camp_sub.add_parser(
        "resume", help="resume an interrupted campaign from its manifest"
    )
    _add_campaign_store_option(camp_resume)
    camp_resume.add_argument("name", help="campaign name to resume")
    camp_resume.add_argument(
        "--jobs", type=int, default=None, metavar="N", help="worker processes"
    )
    camp_resume.add_argument(
        "--executor",
        default=None,
        choices=sorted(EXECUTOR_KINDS),
        help="executor family for the resumed cells",
    )
    _add_campaign_run_options(camp_resume)
    camp_watch = camp_sub.add_parser(
        "watch",
        help="live view of an in-flight (or interrupted) campaign's status file",
    )
    camp_watch.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="result-store directory of the campaign",
    )
    camp_watch.add_argument(
        "name", nargs="?", default=None, help="campaign name to watch"
    )
    camp_watch.add_argument(
        "--status-file",
        default=None,
        metavar="PATH",
        help="watch an explicit status file instead of --store/NAME "
        "(e.g. one written by `scenarios run --status-file`)",
    )
    camp_watch.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh interval (default: 2s)",
    )
    camp_watch.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (scripting / CI)",
    )

    trace_parser = sub.add_parser(
        "traces", help="replayable arrival traces: record, synthesize, inspect"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_record = trace_sub.add_parser(
        "record",
        help="dump the arrival stream a simulation would consume to a trace file",
    )
    source = trace_record.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--scenario",
        metavar="NAME",
        help=f"record a scenario cell's workload: {', '.join(scenario_names())}",
    )
    source.add_argument(
        "--workload",
        metavar="NAME",
        help=(
            "record a paper workload shape "
            f"({', '.join(sorted(paper_workloads(1)))})"
        ),
    )
    trace_record.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES.keys()),
        help="scale preset sizing the recorded workload (default: small)",
    )
    trace_record.add_argument(
        "--seed",
        type=int,
        default=42,
        help=(
            "seed entropy; a scenario recording replays bit-identically "
            "through any cell run with the same entropy"
        ),
    )
    trace_record.add_argument(
        "--tasks", type=int, default=None, help="override the task count (--workload only)"
    )
    trace_record.add_argument(
        "--output", required=True, metavar="PATH", help="trace file (.csv or .json)"
    )
    trace_make = trace_sub.add_parser(
        "make", help="synthesize a diurnal or bursty piecewise-rate arrival trace"
    )
    trace_make.add_argument(
        "kind", choices=sorted(SYNTHETIC_TRACE_KINDS), help="arrival profile"
    )
    trace_make.add_argument(
        "--tasks", type=int, default=10000, help="number of tasks (default: 10000)"
    )
    trace_make.add_argument("--seed", type=int, default=42, help="master random seed")
    trace_make.add_argument(
        "--output", required=True, metavar="PATH", help="trace file (.csv or .json)"
    )
    trace_info = trace_sub.add_parser(
        "info", help="summarise a trace file (tasks, span, content hash)"
    )
    trace_info.add_argument("path", help="trace file to inspect")

    score_parser = sub.add_parser(
        "scorecard",
        help="perf scorecard: fold BENCH records into one history + dashboard",
    )
    score_sub = score_parser.add_subparsers(dest="scorecard_command", required=True)
    score_build = score_sub.add_parser(
        "build", help="fold BENCH records and campaign manifests into the history"
    )
    _add_scorecard_options(score_build)
    score_build.add_argument(
        "--manifest",
        action="append",
        default=[],
        metavar="PATH",
        help="campaign manifest whose timings join the dashboard (repeatable)",
    )
    score_build.add_argument(
        "--diff",
        action="append",
        default=[],
        metavar="PATH",
        help=(
            "telemetry diff record (from `telemetry diff --output`) whose "
            "phase attribution joins the dashboard (repeatable)"
        ),
    )
    score_build.add_argument(
        "--output",
        default=os.path.join("benchmarks", "SCORECARD.md"),
        metavar="PATH",
        help="rendered Markdown dashboard (default: benchmarks/SCORECARD.md)",
    )
    score_check = score_sub.add_parser(
        "check",
        help="gate fresh BENCH records against floors and the recorded history",
    )
    _add_scorecard_options(score_check)

    tel_parser = sub.add_parser(
        "telemetry",
        help="inspect exported telemetry runs (span JSONL written via --telemetry)",
    )
    tel_sub = tel_parser.add_subparsers(dest="telemetry_command", required=True)
    tel_summarize = tel_sub.add_parser(
        "summarize", help="hot phases, critical path and metrics of one run"
    )
    tel_summarize.add_argument("path", help="telemetry run file (.jsonl)")
    tel_tree = tel_sub.add_parser("tree", help="render the run's span tree")
    tel_tree.add_argument("path", help="telemetry run file (.jsonl)")
    tel_tree.add_argument(
        "--max-depth",
        type=int,
        default=None,
        metavar="D",
        help="truncate the tree below depth D (roots are depth 0)",
    )
    tel_top = tel_sub.add_parser("top", help="individually costliest spans of one run")
    tel_top.add_argument("path", help="telemetry run file (.jsonl)")
    tel_top.add_argument(
        "--limit", type=int, default=10, metavar="N", help="rows to show (default: 10)"
    )
    tel_top.add_argument(
        "--by",
        default="elapsed",
        choices=sorted(TOP_SPAN_KEYS),
        help=(
            "ranking key: wall-clock 'elapsed' (default), process 'cpu' "
            "seconds or absolute 'rss' change (the resource keys need a run "
            "recorded with --telemetry-resources)"
        ),
    )
    tel_diff = tel_sub.add_parser(
        "diff",
        help="structurally diff two runs and attribute the delta to span paths",
    )
    tel_diff.add_argument("path_a", help="baseline telemetry run (.jsonl)")
    tel_diff.add_argument("path_b", help="candidate telemetry run (.jsonl)")
    tel_diff.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        metavar="FRACTION",
        help=(
            "relative elapsed change flagged as significant "
            f"(default: {DEFAULT_THRESHOLD:g} = {DEFAULT_THRESHOLD:.0%})"
        ),
    )
    tel_diff.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help=(
            "write the machine-readable diff record there (fold it into the "
            "scorecard with `scorecard build --diff PATH`)"
        ),
    )
    tel_diff.add_argument(
        "--limit",
        type=int,
        default=25,
        metavar="N",
        help="max flat paths to show in the table (default: 25)",
    )
    return parser


def _add_scorecard_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        metavar="PATH",
        help=(
            "BENCH record files, or directories containing BENCH_*.json "
            "(default: benchmarks/)"
        ),
    )
    parser.add_argument(
        "--history",
        default=os.path.join("benchmarks", "SCORECARD.json"),
        metavar="PATH",
        help="scorecard history file (default: benchmarks/SCORECARD.json)",
    )


def _add_campaign_store_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="result-store directory (created if missing)",
    )


def _add_campaign_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="K",
        help="stop after K computed cells (simulated interruption; the run "
        "exits with code 3 and can be resumed)",
    )
    _add_telemetry_option(parser)


def _add_telemetry_option(parser: argparse.ArgumentParser) -> None:
    # Guard against double registration: `campaigns run` composes
    # _add_common_options with _add_campaign_run_options.
    if any(action.dest == "telemetry" for action in parser._actions):
        return
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help=(
            "record a span/metrics telemetry run of this command and export "
            "it as JSONL to PATH (inspect with `repro-scheduler telemetry`); "
            "results are bit-identical with or without this flag"
        ),
    )
    parser.add_argument(
        "--telemetry-resources",
        action="store_true",
        help=(
            "also capture per-span CPU time, RSS delta and GC collections "
            "(implies span overhead; see `telemetry top --by cpu|rss`)"
        ),
    )


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES.keys()),
        help="experiment scale preset (default: small)",
    )
    parser.add_argument("--seed", type=int, default=42, help="master random seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes to shard independent repeats across "
            "(default: the scale preset's jobs setting, i.e. serial; "
            "0 = one per CPU core); stochastic aggregates are identical "
            "for any value, only measured wall-clock values vary"
        ),
    )
    parser.add_argument(
        "--executor",
        default=None,
        choices=sorted(EXECUTOR_KINDS),
        help=(
            "executor family when --jobs > 1: 'process' shards jobs over a "
            "chunked process pool (default), 'async' over the work-stealing "
            "pool (better with uneven cell costs), 'serial' forces "
            "in-process execution; aggregates are bit-identical either way"
        ),
    )
    parser.add_argument(
        "--ga-backend",
        default=None,
        choices=sorted(BACKEND_NAMES),
        help=(
            "GA kernel backend: 'vectorized' batches every operator over the "
            "whole population with NumPy (default), 'loop' is the "
            "per-individual reference implementation; both follow the same "
            "RNG draw-order contract (see repro.ga.kernels)"
        ),
    )
    parser.add_argument(
        "--sim-backend",
        default=None,
        choices=sorted(SIM_BACKENDS),
        help=(
            "simulation core: 'fast' replays static simulations through the "
            "batched static-replay backend (default), 'event' always pumps "
            "the discrete-event engine, 'batch' replays whole repeat blocks "
            "as one structure-of-arrays simulation (falling back to "
            "fast/event per run when batching cannot engage); results are "
            "bit-identical in all cases (see repro.sim.fastpath and "
            "repro.sim.batch)"
        ),
    )
    parser.add_argument(
        "--policy-backend",
        default=None,
        choices=sorted(POLICY_BACKEND_NAMES),
        help=(
            "policy-kernel backend of the heuristic schedulers: "
            "'vectorized' computes decisions with dense-array kernels and "
            "batches whole immediate-mode arrival waves (default), 'loop' "
            "is the per-task reference path; results are bit-identical "
            "either way (see repro.schedulers.kernels)"
        ),
    )
    _add_telemetry_option(parser)


@contextmanager
def _telemetry_export(args: argparse.Namespace) -> Iterator[None]:
    """Run the wrapped command under a telemetry session when requested.

    The session is exported to ``--telemetry PATH`` even when the command is
    interrupted or fails — a partial span tree is exactly what one wants when
    debugging why a run died.
    """
    path = getattr(args, "telemetry", None)
    if not path:
        yield
        return
    # Create (and thereby validate) the export target's directory *before*
    # the run: an unwritable --telemetry path must fail in milliseconds, not
    # after an hour of computed cells at export time.
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    session = TelemetrySession(
        capture_resources=bool(getattr(args, "telemetry_resources", False))
    )
    try:
        with telemetry_session(session):
            yield
    finally:
        meta = {
            "command": args.command,
            "seed": getattr(args, "seed", None),
            "scale": getattr(args, "scale", None),
        }
        run_id = write_run_jsonl(path, session, meta=meta)
        logger.info(
            "telemetry run %s: %d spans (%d dropped) -> %s",
            run_id,
            len(session.spans),
            session.dropped_spans,
            path,
        )


def _warn_dropped(run) -> None:
    """Loud, unmissable stderr warning when the session cap dropped spans.

    Summaries computed from a truncated tree under-count whatever phase was
    hot when the cap hit — the one thing the reader is probably looking for.
    """
    if run["dropped_spans"]:
        print(
            f"warning: {run['dropped_spans']} spans were dropped at the "
            "session cap — totals and shares below UNDER-COUNT the phases "
            "that were active when the cap was reached",
            file=sys.stderr,
        )


def _cmd_telemetry_diff(args: argparse.Namespace) -> int:
    diff = diff_runs(
        load_run_jsonl(args.path_a),
        load_run_jsonl(args.path_b),
        threshold=args.threshold,
    )
    print(render_diff(diff, limit=args.limit))
    if args.output:
        import json as _json

        directory = os.path.dirname(os.path.abspath(args.output))
        os.makedirs(directory, exist_ok=True)
        with open(args.output, "w", encoding="utf8") as handle:
            _json.dump(make_diff_record(diff), handle, indent=2, sort_keys=True)
            handle.write("\n")
        logger.info("telemetry diff record -> %s", args.output)
    return 0


def _cmd_campaigns_watch(args: argparse.Namespace) -> int:
    if args.status_file:
        status_path = args.status_file
    else:
        if not args.store or not args.name:
            raise ReproError(
                "campaigns watch needs either --status-file PATH or "
                "--store DIR and a campaign NAME"
            )
        status_path = ResultStore(args.store).status_path(args.name)
    status = watch_status(status_path, interval=args.interval, once=args.once)
    return 0 if status.get("state") != "interrupted" else 3


def _cmd_telemetry(args: argparse.Namespace) -> int:
    if args.telemetry_command == "diff":
        return _cmd_telemetry_diff(args)
    run = load_run_jsonl(args.path)
    spans = run["spans"]
    if args.telemetry_command == "tree":
        _warn_dropped(run)
        print(f"run {run['run_id']}: {len(spans)} spans")
        print(render_tree(spans, max_depth=args.max_depth))
        return 0
    if args.telemetry_command == "top":
        _warn_dropped(run)
        print(f"run {run['run_id']}: top {min(args.limit, len(spans))} spans by {args.by}")
        for span_obj in top_spans(spans, limit=args.limit, by=args.by):
            worker = f" [{span_obj.worker}]" if span_obj.worker else ""
            extra = ""
            if args.by == "cpu":
                extra = f"  cpu {span_obj.cpu_time * 1000.0:.3f}ms"
            elif args.by == "rss":
                extra = f"  rss {span_obj.rss_delta / 1024.0:+.0f}KiB"
            print(
                f"  {span_obj.duration * 1000.0:10.3f}ms{extra}  "
                f"{span_obj.name}{worker}"
            )
        return 0
    _warn_dropped(run)
    dropped = f", {run['dropped_spans']} dropped" if run["dropped_spans"] else ""
    print(f"run {run['run_id']}: {len(spans)} spans{dropped} (meta: {run['meta']})")
    has_resources = any(s.cpu_time or s.rss_delta or s.gc_collections for s in spans)
    print("\nhot phases (by total time):")
    for row in summarize_spans(spans)[:15]:
        resources = ""
        if has_resources:
            resources = (
                f"  cpu {row['total_cpu_seconds'] * 1000.0:9.3f}ms"
                f"  rss {row['total_rss_delta'] / 1024.0:+9.0f}KiB"
                f"  gc {row['total_gc_collections']:4d}"
            )
        print(
            f"  {row['name']:40s} x{row['count']:<6d} "
            f"total {row['total_seconds'] * 1000.0:10.3f}ms  "
            f"mean {row['mean_seconds'] * 1000.0:9.3f}ms  "
            f"{row['share'] * 100.0:5.1f}%"
            + resources
        )
    path = critical_path(spans)
    if path:
        print("\ncritical path (heaviest root-to-leaf chain):")
        for depth, span_obj in enumerate(path):
            print(f"  {'  ' * depth}{span_obj.name}  {span_obj.duration * 1000.0:.3f}ms")
    metrics = run["metrics"]
    counters = metrics.get("counters", {})
    if counters:
        print("\ncounters:")
        for name, value in sorted(counters.items()):
            print(f"  {name}: {value}")
    histograms = metrics.get("histograms", {})
    if histograms:
        print("\nhistograms:")
        for name, hist in sorted(histograms.items()):
            total = hist.get("total", 0)
            mean = (hist.get("sum", 0.0) / total) if total else 0.0
            print(f"  {name}: n={total} mean={mean:.2f}")
    return 0


def _normalize_jobs(jobs: Optional[int]) -> Optional[int]:
    """The CLI's ``--jobs`` convention: ``0`` means one worker per CPU core."""
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _scale_from_args(args: argparse.Namespace):
    """The selected scale preset, with ``--jobs`` / ``--ga-backend`` applied."""
    scale = get_scale(args.scale)
    jobs = _normalize_jobs(getattr(args, "jobs", None))
    if jobs is not None:
        scale = scale.scaled(jobs=jobs)
    executor_kind = getattr(args, "executor", None)
    if executor_kind is not None:
        scale = scale.scaled(executor=executor_kind)
    ga_backend = getattr(args, "ga_backend", None)
    if ga_backend is not None:
        scale = scale.scaled(ga_backend=ga_backend)
    sim_backend = getattr(args, "sim_backend", None)
    if sim_backend is not None:
        scale = scale.scaled(sim_backend=sim_backend)
    policy_backend = getattr(args, "policy_backend", None)
    if policy_backend is not None:
        scale = scale.scaled(policy_backend=policy_backend)
    return scale


def _cmd_list() -> int:
    print("Reproducible figures:")
    for figure_id, fn in FIGURES.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"  {figure_id:6s} {doc}")
    print("\nScales:")
    for name, scale in SCALES.items():
        print(
            f"  {name:6s} tasks={scale.n_tasks}/{scale.n_tasks_large} "
            f"procs={scale.n_processors} batch={scale.batch_size} "
            f"generations={scale.max_generations} repeats={scale.repeats} "
            f"jobs={scale.jobs} ga-backend={scale.ga_backend} "
            f"sim-backend={scale.sim_backend} policy-backend={scale.policy_backend}"
        )
    return 0


def _cmd_figure(figure_id: str, args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    executor = executor_from_jobs(scale.jobs, scale.executor)
    try:
        result = run_figure(figure_id, scale=scale, seed=args.seed, executor=executor)
    finally:
        executor.close()
    print(figure_report(result))
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    # One executor (and hence one worker pool) shared by all nine figures.
    executor = executor_from_jobs(scale.jobs, scale.executor)
    results = []
    try:
        for figure_id in list_figures():
            logger.info("running %s at scale %s", figure_id, scale.name)
            result = run_figure(figure_id, scale=scale, seed=args.seed, executor=executor)
            results.append(result)
            report = figure_report(result)
            print(report)
            if args.output:
                os.makedirs(args.output, exist_ok=True)
                path = os.path.join(args.output, f"{figure_id}.txt")
                with open(path, "w", encoding="utf8") as handle:
                    handle.write(report)
    finally:
        executor.close()
    print(experiment_summary(results))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    n_tasks = args.tasks or scale.n_tasks
    spec = workload_by_name(args.workload, n_tasks)
    executor = executor_from_jobs(scale.jobs, scale.executor)
    try:
        comparison = compare_schedulers(
            spec,
            scale,
            mean_comm_cost=args.comm_cost,
            seed=args.seed,
            condition={"workload": args.workload, "mean_comm_cost": args.comm_cost},
            executor=executor,
        )
    finally:
        executor.close()
    print(comparison_table(comparison))
    return 0


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    print(f"Scenario library (sized at scale {scale.name!r}):")
    for name, spec in make_all_scenarios(scale).items():
        cluster = spec.cluster
        print(f"\n  {name}")
        print(f"    {spec.description}")
        print(
            f"    cluster: {cluster.kind}, {cluster.n_processors} workers"
            + (f" (+{cluster.reserve_processors} reserve)" if cluster.reserve_processors else "")
            + f"; tasks: {spec.n_tasks_expected}; dynamics: {len(spec.dynamics)} actions"
        )
        for line in spec.timeline().describe():
            print(f"      - {line}")
    return 0


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    executor = executor_from_jobs(scale.jobs, scale.executor)
    try:
        result = run_scenario_matrix(
            args.names,
            scale=scale,
            schedulers=args.schedulers,
            repeats=args.repeats,
            seed=args.seed,
            executor=executor,
            status_path=getattr(args, "status_file", None),
        )
    finally:
        executor.close()
    print(scenario_matrix_table(result))
    # Write the artifact even (especially) for a failing run: the per-cell
    # aggregates are what one needs to debug a conservation violation.
    if args.output:
        path = save_scenario_matrix_json(result, args.output)
        logger.info("wrote %s", path)
    if not result.conservation_ok():
        print("error: task conservation violated in at least one cell", file=sys.stderr)
        return 1
    return 0


def _parse_sweep_value(raw: str):
    """Parse one swept value: int when integral, else float, else string."""
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


def _campaign_spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    sweeps = ()
    if args.sweep:
        if len(args.sweep) < 2:
            raise ReproError(
                "--sweep needs a GAConfig field name followed by at least one value"
            )
        sweeps = (
            SweepSpec(
                parameter=args.sweep[0],
                values=tuple(_parse_sweep_value(v) for v in args.sweep[1:]),
                repeats=args.sweep_repeats,
            ),
        )
    return CampaignSpec(
        name=args.name,
        scale=args.scale,
        seed=args.seed,
        figures=tuple(args.figures or ()),
        scenarios=tuple(args.scenarios or ()),
        schedulers=tuple(args.schedulers) if args.schedulers else None,
        repeats=args.repeats,
        sweeps=sweeps,
        ga_backend=args.ga_backend,
        sim_backend=args.sim_backend,
        policy_backend=args.policy_backend,
    )


def _print_campaign_result(result) -> None:
    status = "interrupted" if result.interrupted else "complete"
    print(
        f"campaign {result.name!r}: {status} — "
        f"{result.computed} computed, {result.cached} cached, "
        f"{result.total_cells} total cells (executor={result.executor})"
    )
    if result.interrupted:
        print(
            f"  reason: {result.interrupt_reason}; resume with "
            f"`repro-scheduler campaigns resume --store <store> {result.name}`"
        )
    print(f"  manifest: {result.manifest_path}")


def _run_campaign_from_spec(spec: CampaignSpec, store: ResultStore, args) -> int:
    jobs = _normalize_jobs(getattr(args, "jobs", None))
    result = run_campaign(
        spec,
        store,
        jobs=jobs,
        executor_kind=getattr(args, "executor", None),
        max_cells=getattr(args, "max_cells", None),
    )
    _print_campaign_result(result)
    return 3 if result.interrupted else 0


def _cmd_campaigns_run(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    spec = _campaign_spec_from_args(args)
    return _run_campaign_from_spec(spec, store, args)


def _cmd_campaigns_resume(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    manifest = load_manifest(store, args.name)
    spec = CampaignSpec.from_dict(manifest["spec"])
    return _run_campaign_from_spec(spec, store, args)


def _manifest_state(manifest) -> str:
    if manifest["interrupted"]:
        return "interrupted"
    return "complete" if manifest.get("aggregates") else "partial"


def _cmd_campaigns_status(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if args.name is None:
        names = store.manifest_names()
        print(f"store {store.root}: {len(store)} records ({store.stats() or 'empty'})")
        if names:
            print("campaigns:")
            for name in names:
                manifest = load_manifest(store, name)
                state = _manifest_state(manifest)
                print(
                    f"  {name}: {state}, {manifest['completed_cells']}"
                    f"/{manifest['total_cells']} cells"
                )
        else:
            print("campaigns: none")
        return 0
    manifest = load_manifest(store, args.name)
    state = _manifest_state(manifest)
    print(
        f"campaign {args.name!r}: {state} — "
        f"{manifest['completed_cells']}/{manifest['total_cells']} cells "
        f"({manifest['computed_cells']} computed, {manifest['cached_cells']} cached; "
        f"executor={manifest['executor']})"
    )
    for entry in manifest["cells"]:
        elapsed = entry.get("elapsed_seconds")
        timing = f"  {elapsed:.3f}s" if isinstance(elapsed, (int, float)) else ""
        print(f"  [{entry['status']:8s}] {entry['cell_id']}{timing}")
    if manifest.get("aggregates"):
        sections = ", ".join(sorted(manifest["aggregates"]))
        print(f"aggregates: {sections} (see {store.manifest_path(args.name)})")
    return 0


def _cmd_traces_record(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    if args.scenario:
        spec = get_scenario(args.scenario, scale)
        cell = ScenarioCell(
            spec=spec,
            scheduler="LL",  # the workload stream is scheduler-independent
            repeat=0,
            seed_entropy=args.seed,
            batch_size=scale.batch_size,
            max_generations=scale.max_generations,
        )
        tasks = cell_workload(cell)
        source = f"scenario {args.scenario!r} (seed entropy {args.seed})"
    else:
        import numpy as np

        n_tasks = args.tasks or scale.n_tasks
        workload = workload_by_name(args.workload, n_tasks)
        tasks = generate_workload(workload, np.random.default_rng(args.seed))
        source = f"workload {args.workload!r} (seed {args.seed})"
    trace = trace_from_tasks(tasks)
    path = save_trace(trace, args.output)
    print(f"recorded {trace.n_tasks} tasks from {source} -> {path}")
    print(f"  sha256: {trace_sha256(path)}")
    print(f"  replay with: --workload trace:{path}")
    return 0


def _cmd_traces_make(args: argparse.Namespace) -> int:
    maker = SYNTHETIC_TRACE_KINDS[args.kind]
    trace = maker(args.tasks, seed=args.seed)
    path = save_trace(trace, args.output)
    span = float(trace.arrival_time[-1]) if trace.n_tasks else 0.0
    print(
        f"synthesized {args.kind} trace: {trace.n_tasks} tasks over "
        f"{span:.1f}s -> {path}"
    )
    print(f"  sha256: {trace_sha256(path)}")
    return 0


def _cmd_traces_info(args: argparse.Namespace) -> int:
    trace = load_trace(args.path)
    span = float(trace.arrival_time[-1]) if trace.n_tasks else 0.0
    described = trace.describe()
    print(f"trace {args.path}")
    print(f"  tasks: {trace.n_tasks}")
    print(f"  arrival span: {span:.3f}s")
    print(f"  mean size: {described['mean_mflops']:.1f} MFLOPs")
    print(f"  comm costs: {'yes' if trace.comm_cost is not None else 'no'}")
    print(f"  sha256: {trace_sha256(args.path)}")
    return 0


def _scorecard_records(args: argparse.Namespace):
    paths = args.paths or ["benchmarks"]
    files = find_bench_records(paths)
    if not files:
        raise ReproError(f"no BENCH records found under {paths}")
    return [load_bench_record(path) for path in files]


def _cmd_scorecard_build(args: argparse.Namespace) -> int:
    records = _scorecard_records(args)
    for manifest_path in args.manifest:
        record = manifest_record(manifest_path)
        if record is not None:
            records.append(record)
    for diff_path in args.diff:
        records.append(telemetry_diff_record(diff_path))
    history = load_history(args.history) if os.path.exists(args.history) else new_history()
    added = fold_into_history(history, records)
    save_history(history, args.history)
    dashboard = render_scorecard_markdown(history)
    with open(args.output, "w", encoding="utf8") as handle:
        handle.write(dashboard if dashboard.endswith("\n") else dashboard + "\n")
    print(
        f"scorecard: folded {len(records)} records "
        f"({added} new points) into {args.history}"
    )
    print(f"dashboard: {args.output}")
    return 0


def _cmd_scorecard_check(args: argparse.Namespace) -> int:
    records = _scorecard_records(args)
    if not os.path.exists(args.history):
        raise ReproError(
            f"no scorecard history at {args.history}; run `scorecard build` first"
        )
    history = load_history(args.history)
    failed, checks = check_records(records, history)
    for check in checks:
        print(f"{check.status:4s} {check.label}: {check.message}")
    counts = {status: sum(1 for c in checks if c.status == status) for status in
              ("PASS", "FAIL", "SKIP")}
    print(
        f"scorecard check: {counts['PASS']} pass, {counts['FAIL']} fail, "
        f"{counts['SKIP']} skipped (no comparable history)"
    )
    return 1 if failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(level=args.log_level, json_output=args.log_json)
    try:
        with _telemetry_export(args):
            if args.command == "list":
                return _cmd_list()
            if args.command == "all":
                return _cmd_all(args)
            if args.command == "compare":
                return _cmd_compare(args)
            if args.command == "scenarios":
                if args.scenario_command == "list":
                    return _cmd_scenarios_list(args)
                return _cmd_scenarios_run(args)
            if args.command == "campaigns":
                if args.campaign_command == "status":
                    return _cmd_campaigns_status(args)
                if args.campaign_command == "resume":
                    return _cmd_campaigns_resume(args)
                if args.campaign_command == "watch":
                    return _cmd_campaigns_watch(args)
                return _cmd_campaigns_run(args)
            if args.command == "traces":
                if args.trace_command == "record":
                    return _cmd_traces_record(args)
                if args.trace_command == "make":
                    return _cmd_traces_make(args)
                return _cmd_traces_info(args)
            if args.command == "scorecard":
                if args.scorecard_command == "build":
                    return _cmd_scorecard_build(args)
                return _cmd_scorecard_check(args)
            if args.command == "telemetry":
                return _cmd_telemetry(args)
            return _cmd_figure(args.command, args)
    except ExperimentInterrupted as exc:
        # Ctrl-C mid-map: the executors already terminated their workers.
        # 130 is the conventional SIGINT exit code, distinct from 2
        # (configuration errors) and 3 (resumable campaign interruption).
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
