"""Tests for the growable columnar record buffers (`repro.util.buffers`)."""

import numpy as np
import pytest

from repro.util.buffers import RecordBuffer
from repro.util.errors import ConfigurationError


def make_buffer(capacity=4):
    return RecordBuffer((("t", np.float64), ("count", np.int64)), capacity=capacity)


class TestConstruction:
    def test_requires_fields(self):
        with pytest.raises(ConfigurationError):
            RecordBuffer(())

    def test_rejects_duplicate_fields(self):
        with pytest.raises(ConfigurationError):
            RecordBuffer((("a", float), ("a", float)))

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            make_buffer(capacity=0)

    def test_reports_fields_in_order(self):
        assert make_buffer().fields == ("t", "count")


class TestAppendAndGrow:
    def test_append_and_read_back(self):
        buffer = make_buffer()
        buffer.append(1.5, 3)
        buffer.append(2.5, 4)
        assert len(buffer) == 2
        assert buffer.column("t").tolist() == [1.5, 2.5]
        assert buffer.column("count").tolist() == [3, 4]

    def test_grows_past_initial_capacity(self):
        buffer = make_buffer(capacity=2)
        for i in range(9):
            buffer.append(float(i), i)
        assert len(buffer) == 9
        assert buffer.capacity >= 9
        assert buffer.column("count").tolist() == list(range(9))

    def test_bool_reflects_content(self):
        buffer = make_buffer()
        assert not buffer
        buffer.append(0.0, 0)
        assert buffer

    def test_row_returns_python_scalars(self):
        buffer = make_buffer()
        buffer.append(1.5, 3)
        row = buffer.row(0)
        assert row == (1.5, 3)
        assert isinstance(row[0], float) and isinstance(row[1], int)

    def test_row_supports_negative_index_and_bounds(self):
        buffer = make_buffer()
        buffer.append(1.0, 1)
        buffer.append(2.0, 2)
        assert buffer.row(-1) == (2.0, 2)
        with pytest.raises(IndexError):
            buffer.row(2)


class TestExtend:
    def test_bulk_extend_matches_appends(self):
        one, other = make_buffer(), make_buffer()
        values = [(float(i) / 3, i) for i in range(20)]
        for t, count in values:
            one.append(t, count)
        other.extend(
            t=np.array([v[0] for v in values]),
            count=np.array([v[1] for v in values]),
        )
        np.testing.assert_array_equal(one.column("t"), other.column("t"))
        np.testing.assert_array_equal(one.column("count"), other.column("count"))

    def test_extend_grows(self):
        buffer = make_buffer(capacity=2)
        buffer.extend(t=np.arange(10, dtype=float), count=np.arange(10))
        assert len(buffer) == 10

    def test_extend_requires_matching_fields(self):
        with pytest.raises(ConfigurationError):
            make_buffer().extend(t=np.array([1.0]))

    def test_extend_requires_equal_lengths(self):
        with pytest.raises(ConfigurationError):
            make_buffer().extend(t=np.array([1.0]), count=np.array([1, 2]))


class TestColumnViews:
    def test_columns_are_read_only_views(self):
        buffer = make_buffer()
        buffer.append(1.0, 1)
        view = buffer.column("t")
        with pytest.raises(ValueError):
            view[0] = 9.0

    def test_unknown_column_rejected(self):
        with pytest.raises(ConfigurationError):
            make_buffer().column("nope")

    def test_view_is_a_snapshot_prefix(self):
        buffer = make_buffer()
        buffer.append(1.0, 1)
        view = buffer.column("t")
        buffer.append(2.0, 2)
        assert view.tolist() == [1.0]
        assert buffer.column("t").tolist() == [1.0, 2.0]
