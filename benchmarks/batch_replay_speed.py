#!/usr/bin/env python3
"""Benchmark: batch-of-simulations replay vs per-repeat fast runs, in sims/sec.

Times R repeats of one static condition — each repeat with its own workload,
cluster and RNG streams, exactly the shape of a figure/campaign repeat block —
two ways: per repeat through the fast backend (``sim.run()`` in a loop, the
pre-batching baseline) and as one :func:`repro.sim.batch.run_batched_replay`
call laying the R lanes out as a structure-of-arrays batch.  Before any
timing it asserts the two paths are *bit-identical* on the full execution
trace and every headline metric — batching is only a win because it changes
nothing.

Timed sections cover the simulation only: lane construction (workload +
cluster + scheduler + simulation objects) happens outside the clock and is
measured separately, so the ``setup`` numbers in the detail blob show what
share of a cell's wall-clock the vectorised TaskSet/workload construction
(amortised once per condition) removed from the simulation path.

Lane widths R ∈ {8, 32, 128} are timed at each scale; ``paper`` is the
publication's 10,000-task, 50-processor shape.  Writes a schema-v2 BENCH
record (default target is the committed one)::

    PYTHONPATH=src python benchmarks/batch_replay_speed.py \
        --scale all --output benchmarks/BENCH_batch_replay.json

Regression gating happens centrally via ``repro scorecard check``: the
paper-scale R=32 ``batch_speedup`` row carries the hard 2x floor the
batched-replay work targets; narrower widths are informational (R=8 is
expected to hover near 1x — the batch only pulls ahead once the lane
dimension amortises the per-wave bookkeeping).
"""

from __future__ import annotations

import argparse
import hashlib
import os
import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from _shared import bench_row, write_bench_record
from repro.cluster.topology import heterogeneous_cluster
from repro.schedulers.registry import make_scheduler
from repro.sim.batch import run_batched_replay
from repro.sim.simulation import DistributedSystemSimulation, SimulationConfig
from repro.workloads.generator import generate_workload
from repro.workloads.suites import workload_by_name

DEFAULT_RECORD = os.path.join(os.path.dirname(__file__), "BENCH_batch_replay.json")
#: Minimum batch/fast speedup at paper scale with R=32 lanes.
PAPER_R32_FLOOR = 2.0
#: Lane widths timed at every scale.
LANE_WIDTHS = (8, 32, 128)


@dataclass(frozen=True)
class BatchScale:
    """One benchmark problem size (a single repeat's shape)."""

    name: str
    n_tasks: int
    n_processors: int
    mean_comm_cost: float


SCALES: Dict[str, BatchScale] = {
    "smoke": BatchScale(name="smoke", n_tasks=600, n_processors=10, mean_comm_cost=5.0),
    "paper": BatchScale(
        name="paper", n_tasks=10000, n_processors=50, mean_comm_cost=5.0
    ),
}


def build_lanes(scale: BatchScale, lanes: int, backend: str, seed: int):
    """R freshly constructed simulations, each with its own repeat streams."""
    sims = []
    for lane in range(lanes):
        lane_seed = seed + 1000 * lane
        tasks = generate_workload(
            workload_by_name("normal", scale.n_tasks),
            np.random.default_rng(lane_seed),
        )
        cluster = heterogeneous_cluster(
            scale.n_processors,
            mean_comm_cost=scale.mean_comm_cost,
            rng=np.random.default_rng(lane_seed + 1),
        )
        scheduler = make_scheduler(
            "EF", n_processors=scale.n_processors, rng=lane_seed + 2
        )
        sims.append(
            DistributedSystemSimulation(
                scheduler,
                cluster,
                tasks,
                config=SimulationConfig(sim_backend=backend),
                rng=lane_seed + 3,
            )
        )
    return sims


def result_digest(result) -> str:
    """Digest of every trace-visible number (for the parity check)."""
    h = hashlib.sha256()
    trace = result.trace
    for name in (
        "task_id",
        "proc_id",
        "size_mflops",
        "arrival_time",
        "assigned_time",
        "dispatch_time",
        "exec_start",
        "exec_end",
    ):
        h.update(trace.column(name).tobytes())
    h.update(repr((result.makespan, result.efficiency)).encode())
    h.update(repr(result.metrics.mean_response_time).encode())
    h.update(repr(result.scheduler_invocations).encode())
    h.update(repr(result.events_processed).encode())
    return h.hexdigest()


def assert_batch_parity(scale: BatchScale, seed: int, lanes: int = 8) -> None:
    """Fail loudly if the batched replay ever diverges from per-repeat runs."""
    fast = [sim.run() for sim in build_lanes(scale, lanes, "fast", seed)]
    batched = run_batched_replay(build_lanes(scale, lanes, "batch", seed))
    for lane, (fast_result, batch_result) in enumerate(zip(fast, batched)):
        if result_digest(fast_result) != result_digest(batch_result):
            raise SystemExit(
                f"batch parity violated on scale={scale.name} lane={lane}: "
                "batched and per-repeat fast results differ"
            )


def measure_width(scale: BatchScale, lanes: int, seed: int, repeats: int):
    """Best-of-*repeats* sims/sec for both paths at one lane width."""
    best = {"fast": float("inf"), "batch": float("inf")}
    setup_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fast_sims = build_lanes(scale, lanes, "fast", seed)
        setup_seconds = min(setup_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        for sim in fast_sims:
            sim.run()
        best["fast"] = min(best["fast"], time.perf_counter() - start)

        batch_sims = build_lanes(scale, lanes, "batch", seed)
        start = time.perf_counter()
        run_batched_replay(batch_sims)
        best["batch"] = min(best["batch"], time.perf_counter() - start)
    return {
        "lanes": lanes,
        "sims_per_second": {
            "fast": round(lanes / best["fast"], 3),
            "batch": round(lanes / best["batch"], 3),
        },
        "speedup": round(best["fast"] / best["batch"], 3),
        # Lane construction happens once per condition and is outside both
        # timed sections; its share of the old per-repeat cell wall-clock
        # documents what the amortised (vectorised) setup removed.
        "setup_seconds": round(setup_seconds, 4),
        "setup_share_of_fast_cell": round(
            setup_seconds / (setup_seconds + best["fast"]), 4
        ),
    }


def measure_scale(scale: BatchScale, seed: int, repeats: int) -> Dict[str, object]:
    assert_batch_parity(scale, seed)
    return {
        "n_tasks": scale.n_tasks,
        "n_processors": scale.n_processors,
        "mean_comm_cost": scale.mean_comm_cost,
        "scheduler": "EF",
        "batch_parity": "bit-identical",
        "widths": {
            str(lanes): measure_width(scale, lanes, seed, repeats)
            for lanes in LANE_WIDTHS
        },
    }


def run_record(args: argparse.Namespace) -> int:
    names = sorted(SCALES) if args.scale == "all" else [args.scale]
    detail = {name: measure_scale(SCALES[name], args.seed, args.repeats) for name in names}
    rows: List[Dict[str, object]] = []
    for name in names:
        for lanes in LANE_WIDTHS:
            data = detail[name]["widths"][str(lanes)]
            floor = PAPER_R32_FLOOR if (name == "paper" and lanes == 32) else None
            rows.append(
                bench_row(
                    "batch_speedup",
                    data["speedup"],
                    "x",
                    scale=f"{name}-r{lanes}",
                    floor=floor,
                )
            )
        rows.append(
            bench_row(
                "batch_sims_per_second",
                detail[name]["widths"]["32"]["sims_per_second"]["batch"],
                "sims/s",
                scale=f"{name}-r32",
            )
        )
    write_bench_record(
        "batch_replay_speed",
        rows,
        output=args.output,
        config={"seed": args.seed, "repeats": args.repeats},
        detail=detail,
    )
    return 0


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default="all",
        choices=[*sorted(SCALES), "all"],
        help="benchmark size to run (default: all)",
    )
    parser.add_argument("--seed", type=int, default=42, help="master random seed")
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats; the best is kept"
    )
    parser.add_argument("--output", default=None, help="write the BENCH json here")
    return parser.parse_args()


def main() -> int:
    return run_record(parse_args())


if __name__ == "__main__":
    raise SystemExit(main())
