"""Parallel experiment execution with deterministic seed streams.

The experiment harness (``repro.experiments``) repeats every data point many
times; this package shards those independent repeats — and sweep points and
figure conditions — across worker processes while keeping the aggregates
bit-identical to a serial run with the same master seed.  See
:mod:`repro.parallel.executor` for the executor abstraction and
:mod:`repro.parallel.jobs` for the picklable job specs.
"""

from .async_executor import AsyncWorkStealingExecutor
from .executor import (
    EXECUTOR_KINDS,
    ExperimentExecutor,
    ParallelExecutor,
    SerialExecutor,
    executor_from_jobs,
    resolve_executor,
)
from .jobs import (
    ComparisonRepeatJob,
    ComparisonRepeatOutcome,
    GARunJob,
    GARunOutcome,
    run_comparison_repeat,
    run_ga_job,
)

__all__ = [
    "EXECUTOR_KINDS",
    "ExperimentExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "AsyncWorkStealingExecutor",
    "executor_from_jobs",
    "resolve_executor",
    "ComparisonRepeatJob",
    "ComparisonRepeatOutcome",
    "run_comparison_repeat",
    "GARunJob",
    "GARunOutcome",
    "run_ga_job",
]
