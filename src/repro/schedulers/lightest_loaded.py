"""Lightest-loaded (LL) immediate-mode scheduler.

Assigns each arriving task to the processor with the smallest *pending load*
measured in MFLOPs (Sect. 4.1).  It ignores the size of the task being
placed and the speed of the processors, so it can systematically overload
slow machines in a heterogeneous system — which is exactly the weakness the
paper's comparison exposes.  Worst case complexity Θ(M) per task.
"""

from __future__ import annotations

import numpy as np

from ..workloads.task import Task
from .base import ImmediateScheduler, SchedulingContext

__all__ = ["LightestLoadedScheduler"]


class LightestLoadedScheduler(ImmediateScheduler):
    """Assign each task to the processor with the least outstanding MFLOPs.

    Ties (identical pending loads) go to the lowest-indexed processor, in
    both the per-task path below and the batched wave kernel.
    """

    name = "LL"

    def select_processor(self, task: Task, ctx: SchedulingContext) -> int:
        return int(np.argmin(ctx.pending_loads))

    def select_processors_wave(self, sizes: np.ndarray, ctx: SchedulingContext):
        return ctx.kernels.lightest_loaded_wave(sizes, ctx.pending_loads)
