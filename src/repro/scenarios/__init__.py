"""Scenario & fault-injection subsystem.

Declarative cluster-dynamics scenarios (worker failure / recovery / join,
load spikes) composed with cluster topology and workload suites, a named
scenario library, and a sharded scenario-matrix runner built on
:mod:`repro.parallel`.
"""

from .dynamics import (
    DynamicsAction,
    DynamicsTimeline,
    LoadSpike,
    WorkerFailure,
    WorkerJoin,
    WorkerRecovery,
)
from .registry import (
    SCENARIO_BUILDERS,
    get_scenario,
    make_all_scenarios,
    scenario_names,
)
from .runner import (
    ScenarioAggregate,
    ScenarioCell,
    ScenarioCellOutcome,
    ScenarioMatrixResult,
    cell_workload,
    run_scenario_cell,
    run_scenario_matrix,
)
from .spec import ClusterSpec, ScenarioSpec

__all__ = [
    "WorkerFailure",
    "WorkerRecovery",
    "WorkerJoin",
    "LoadSpike",
    "DynamicsAction",
    "DynamicsTimeline",
    "ClusterSpec",
    "ScenarioSpec",
    "SCENARIO_BUILDERS",
    "scenario_names",
    "get_scenario",
    "make_all_scenarios",
    "ScenarioCell",
    "ScenarioCellOutcome",
    "cell_workload",
    "run_scenario_cell",
    "ScenarioAggregate",
    "ScenarioMatrixResult",
    "run_scenario_matrix",
]
