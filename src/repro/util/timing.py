"""Low-level wall-clock primitives (:class:`Stopwatch` and :func:`timed`).

Named phase *accumulation* lives in :class:`repro.telemetry.PhaseTimer`,
which flushes into the active telemetry session as a span subtree; this
module keeps only the raw clock helpers it builds on.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["Stopwatch", "timed"]


class Stopwatch:
    """A simple restartable wall-clock stopwatch.

    Examples
    --------
    >>> sw = Stopwatch()
    >>> sw.start()
    >>> _ = sum(range(1000))
    >>> elapsed = sw.stop()
    >>> elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        """Start (or restart) the stopwatch, keeping any accumulated time."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the total accumulated seconds."""
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self._elapsed

    def reset(self) -> None:
        """Zero the accumulated time and stop."""
        self._start = None
        self._elapsed = 0.0

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently running."""
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Accumulated seconds (including the in-flight interval if running)."""
        extra = 0.0 if self._start is None else time.perf_counter() - self._start
        return self._elapsed + extra


@contextmanager
def timed() -> Iterator[Stopwatch]:
    """Context manager yielding a running :class:`Stopwatch`.

    The stopwatch is stopped when the block exits, so ``sw.elapsed`` after the
    block reports the body's wall time.
    """
    sw = Stopwatch().start()
    try:
        yield sw
    finally:
        sw.stop()
