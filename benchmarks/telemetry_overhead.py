#!/usr/bin/env python3
"""Benchmark: what the telemetry layer costs — and proves it costs nothing off.

Times the fast-path ``replay`` cell of :mod:`sim_core_speed` (one MM
scheduling wave over the whole workload, ``sim_backend="fast"``) three ways:

* **disabled** — no telemetry session active: the production default.  The
  instrumentation must reduce to a module-global read, so this number is
  gated with a 2 % trajectory tolerance against the recorded history — the
  "telemetry off is free" contract of ``repro.telemetry``;
* **enabled** — the same cell inside a :func:`repro.telemetry.
  telemetry_session`: spans, phase attribution and metrics all recording.
  Reported as an overhead ratio over the disabled run with a hard 1.5x
  ceiling (measured overheads are a few percent; the ceiling guards against
  someone accidentally putting allocation on the hot path);
* **resources** — enabled *plus* per-span resource attribution
  (``capture_resources=True``: process-CPU, RSS delta and GC counts read at
  every span boundary).  Reported as ``resource_overhead_x`` over the same
  disabled baseline, gated by the same 1.5x ceiling — the probes are a few
  syscalls per span, not per simulated event, so they must stay in the noise;
* **rng-inert** — before any timing, all three runs must be bit-identical on
  the full execution trace (a ``bool`` row with floor 1.0, so the scorecard
  hard-fails if telemetry — including resource capture — ever perturbs a
  result).

Writes a schema-v2 BENCH record (the default target is the committed one)::

    PYTHONPATH=src python benchmarks/telemetry_overhead.py \
        --scale all --output benchmarks/BENCH_telemetry.json

Gating happens centrally via ``repro scorecard check``.
"""

from __future__ import annotations

import argparse
import os
import time
from typing import Dict, List

from _shared import bench_row, write_bench_record
from sim_core_speed import SCALES, SimScale, build_inputs, result_digest

from repro.schedulers.registry import make_scheduler
from repro.sim.simulation import SimulationConfig, simulate_schedule
from repro.telemetry import TelemetrySession, telemetry_session

DEFAULT_RECORD = os.path.join(os.path.dirname(__file__), "BENCH_telemetry.json")
#: Allowed fractional regression of the disabled (no-op) path's throughput.
DISABLED_TOLERANCE = 0.02
#: Hard ceiling on the enabled/disabled wall-time ratio; resource capture is
#: held to the same ceiling (its probes are per-span, not per-event).
ENABLED_OVERHEAD_CEILING = 1.5
RESOURCE_OVERHEAD_CEILING = 1.5

#: Benchmark modes: session factory per mode (``None`` = no session).
MODES = (
    ("disabled", None),
    ("enabled", lambda: TelemetrySession()),
    ("resources", lambda: TelemetrySession(capture_resources=True)),
)


def run_once(scale: SimScale, seed: int, session_factory):
    """One fast-path replay simulation; returns ``(result, seconds)``."""
    tasks, cluster = build_inputs(scale, seed)
    scheduler = make_scheduler(
        "MM",
        n_processors=scale.n_processors,
        batch_size=scale.n_tasks,
        max_generations=10,
        rng=seed + 2,
    )
    config = SimulationConfig(sim_backend="fast")

    def timed_run():
        start = time.perf_counter()
        result = simulate_schedule(scheduler, cluster, tasks, config=config, rng=seed + 3)
        return result, time.perf_counter() - start

    if session_factory is None:
        return timed_run()
    with telemetry_session(session_factory()):
        return timed_run()


def measure_scale(scale: SimScale, seed: int, repeats: int) -> Dict[str, object]:
    """Best-of-*repeats* timings plus the bit-identity verdict for one scale."""
    digests = {}
    best = {}
    run_once(scale, seed, None)  # warm caches before any timing
    for mode, session_factory in MODES:
        fastest = float("inf")
        for _ in range(repeats):
            result, elapsed = run_once(scale, seed, session_factory)
            fastest = min(fastest, elapsed)
        digests[mode] = result_digest(result)
        best[mode] = fastest
    return {
        "n_tasks": scale.n_tasks,
        "n_processors": scale.n_processors,
        "rng_inert": len(set(digests.values())) == 1,
        "disabled_seconds": round(best["disabled"], 6),
        "enabled_seconds": round(best["enabled"], 6),
        "resources_seconds": round(best["resources"], 6),
        "disabled_sims_per_second": round(1.0 / best["disabled"], 3),
        "enabled_overhead_x": round(best["enabled"] / best["disabled"], 4),
        "resource_overhead_x": round(best["resources"] / best["disabled"], 4),
    }


def run_record(args: argparse.Namespace) -> int:
    names = sorted(SCALES) if args.scale == "all" else [args.scale]
    detail = {name: measure_scale(SCALES[name], args.seed, args.repeats) for name in names}
    rows: List[Dict[str, object]] = []
    for name in names:
        data = detail[name]
        rows.append(
            bench_row(
                "disabled_sims_per_sec",
                data["disabled_sims_per_second"],
                "sims/s",
                scale=name,
                tolerance=DISABLED_TOLERANCE,
            )
        )
        rows.append(
            bench_row(
                "enabled_overhead_x",
                data["enabled_overhead_x"],
                "x",
                scale=name,
                direction="lower",
                floor=ENABLED_OVERHEAD_CEILING,
            )
        )
        rows.append(
            bench_row(
                "resource_overhead_x",
                data["resource_overhead_x"],
                "x",
                scale=name,
                direction="lower",
                floor=RESOURCE_OVERHEAD_CEILING,
            )
        )
        rows.append(
            bench_row(
                "rng_inert",
                1.0 if data["rng_inert"] else 0.0,
                "bool",
                scale=name,
                floor=1.0,
            )
        )
    write_bench_record(
        "telemetry_overhead",
        rows,
        output=args.output,
        config={"seed": args.seed, "repeats": args.repeats},
        detail=detail,
    )
    return 0


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default="all",
        choices=[*sorted(SCALES), "all"],
        help="benchmark size to run (default: all)",
    )
    parser.add_argument("--seed", type=int, default=42, help="master random seed")
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats; the best is kept"
    )
    parser.add_argument("--output", default=None, help="write the BENCH json here")
    return parser.parse_args()


def main() -> int:
    return run_record(parse_args())


if __name__ == "__main__":
    raise SystemExit(main())
