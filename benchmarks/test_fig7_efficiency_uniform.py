"""Paper Fig. 7 — efficiency vs 1/mean communication cost, uniform[10, 1000] task sizes.

Paper claims reproduced here: the two meta-heuristic (GA) schedulers provide
more efficient schedules than the simple heuristics, and PN leads overall.
"""

import numpy as np
import pytest

from repro.experiments import figure7
from repro.schedulers import ALL_SCHEDULER_NAMES

from _shared import FigureCache

_cache = FigureCache()


@pytest.fixture
def result(scale, seed):
    return _cache.get("fig7", lambda: figure7(scale=scale, seed=seed))


def test_fig7_efficiency_uniform(benchmark, scale, seed):
    """Time the full Fig. 7 sweep (uniform task sizes)."""
    outcome = _cache.run_once("fig7", lambda: figure7(scale=scale, seed=seed), benchmark)
    assert set(outcome.series) == set(ALL_SCHEDULER_NAMES)


class TestShape:
    def test_pn_near_top_on_average(self, result):
        means = {name: float(np.mean(series)) for name, series in result.series.items()}
        ranked = sorted(means, key=means.get, reverse=True)
        assert ranked.index("PN") < 3, means

    def test_pn_beats_round_robin_everywhere(self, result):
        pn = np.asarray(result.series["PN"])
        rr = np.asarray(result.series["RR"])
        assert np.all(pn >= rr * 0.95)

    def test_efficiency_rises_as_comm_cost_falls(self, result):
        series = result.series["PN"]
        assert series[-1] > series[0]

    def test_every_series_has_one_point_per_comm_cost(self, result, scale):
        for series in result.series.values():
            assert len(series) == len(scale.comm_cost_means)
