"""Round-robin (RR) immediate-mode scheduler.

The most basic baseline of the paper (Sect. 4.1): tasks are dealt to the
processors in rotation, using no information about either task sizes or
processor loads.  Worst case complexity Θ(1) per task.
"""

from __future__ import annotations


from ..workloads.task import Task
from .base import ImmediateScheduler, SchedulingContext

__all__ = ["RoundRobinScheduler"]


class RoundRobinScheduler(ImmediateScheduler):
    """Assign task *k* to processor ``k mod M``, regardless of loads or sizes."""

    name = "RR"

    def __init__(self, start_processor: int = 0):
        self._start = int(start_processor)
        self._next = int(start_processor)

    def select_processor(self, task: Task, ctx: SchedulingContext) -> int:
        proc = self._next % ctx.n_processors
        self._next = (self._next + 1) % ctx.n_processors
        return proc

    def select_processors_wave(self, sizes, ctx: SchedulingContext):
        procs, self._next = ctx.kernels.round_robin_wave(
            len(sizes), ctx.n_processors, self._next
        )
        return procs

    def reset(self) -> None:
        """Restart the rotation from the configured starting processor."""
        self._next = self._start
