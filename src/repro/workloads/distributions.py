"""Task-size distributions (Sect. 4 of the paper).

The paper generates random task sizes from three families — uniform, normal
and Poisson — to demonstrate that the scheduler is not tuned to a single
workload shape.  Each distribution here produces sizes in MFLOPs and clamps
samples to a configurable positive minimum so that degenerate (zero or
negative) task sizes can never be produced.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from ..util.errors import ConfigurationError
from ..util.rng import RNGLike, ensure_rng
from ..util.validation import require_non_negative, require_positive

__all__ = [
    "SizeDistribution",
    "UniformSizes",
    "NormalSizes",
    "PoissonSizes",
    "ConstantSizes",
    "ExponentialSizes",
    "BimodalSizes",
    "distribution_from_name",
]

#: Smallest admissible task size in MFLOPs; samples below it are clamped.
DEFAULT_MINIMUM_MFLOPS = 1.0


class SizeDistribution(ABC):
    """Base class for random task-size generators.

    Subclasses implement :meth:`_raw_sample`; the public :meth:`sample`
    clamps to the configured minimum so every task size is strictly positive.
    """

    def __init__(self, minimum: float = DEFAULT_MINIMUM_MFLOPS) -> None:
        self.minimum = require_positive(minimum, "minimum task size")

    @abstractmethod
    def _raw_sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw *n* raw (unclamped) samples."""

    @abstractmethod
    def mean(self) -> float:
        """Theoretical mean of the (unclamped) distribution, in MFLOPs."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short human-readable name, e.g. ``"normal(1000, 9e+05)"``."""

    def sample(self, n: int, rng: RNGLike = None) -> np.ndarray:
        """Draw *n* task sizes (MFLOPs), clamped to the minimum size."""
        if n < 0:
            raise ConfigurationError(f"number of samples must be >= 0, got {n}")
        gen = ensure_rng(rng)
        if n == 0:
            return np.empty(0, dtype=float)
        raw = np.asarray(self._raw_sample(gen, n), dtype=float)
        return np.maximum(raw, self.minimum)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name})"


class UniformSizes(SizeDistribution):
    """Task sizes uniformly distributed on ``[low, high]`` MFLOPs."""

    def __init__(self, low: float, high: float, minimum: float = DEFAULT_MINIMUM_MFLOPS):
        super().__init__(minimum)
        self.low = require_positive(low, "low")
        self.high = require_positive(high, "high")
        if self.high < self.low:
            raise ConfigurationError(f"high ({high}) must be >= low ({low})")

    def _raw_sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def name(self) -> str:
        return f"uniform({self.low:g}, {self.high:g})"


class NormalSizes(SizeDistribution):
    """Task sizes from a normal distribution, parameterised by mean and variance.

    The paper's normal workload uses a mean of 1000 MFLOPs and a variance of
    ``9 x 10^5`` MFLOPs².  Samples are clamped at the minimum size, which is
    the usual way a truncated-at-zero "normal" task size model is realised.
    """

    def __init__(
        self,
        mean: float,
        variance: float,
        minimum: float = DEFAULT_MINIMUM_MFLOPS,
    ):
        super().__init__(minimum)
        self._mean = require_positive(mean, "mean")
        self.variance = require_non_negative(variance, "variance")

    @property
    def std(self) -> float:
        """Standard deviation in MFLOPs."""
        return math.sqrt(self.variance)

    def _raw_sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.normal(self._mean, self.std, size=n)

    def mean(self) -> float:
        return self._mean

    @property
    def name(self) -> str:
        return f"normal({self._mean:g}, {self.variance:g})"


class PoissonSizes(SizeDistribution):
    """Task sizes drawn from a Poisson distribution with the given mean."""

    def __init__(self, mean: float, minimum: float = DEFAULT_MINIMUM_MFLOPS):
        super().__init__(minimum)
        self._mean = require_positive(mean, "mean")

    def _raw_sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.poisson(self._mean, size=n).astype(float)

    def mean(self) -> float:
        return self._mean

    @property
    def name(self) -> str:
        return f"poisson({self._mean:g})"


class ConstantSizes(SizeDistribution):
    """Degenerate distribution: every task has the same size.

    Useful for tests and for the homogeneous-task baseline comparisons.
    """

    def __init__(self, size: float, minimum: float = DEFAULT_MINIMUM_MFLOPS):
        super().__init__(minimum)
        self.size = require_positive(size, "size")

    def _raw_sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.size, dtype=float)

    def mean(self) -> float:
        return self.size

    @property
    def name(self) -> str:
        return f"constant({self.size:g})"


class ExponentialSizes(SizeDistribution):
    """Task sizes drawn from an exponential distribution (heavy-ish tail).

    Not used by the paper's figures but provided as an extension workload for
    stress-testing the schedulers against skewed task populations.
    """

    def __init__(self, mean: float, minimum: float = DEFAULT_MINIMUM_MFLOPS):
        super().__init__(minimum)
        self._mean = require_positive(mean, "mean")

    def _raw_sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self._mean, size=n)

    def mean(self) -> float:
        return self._mean

    @property
    def name(self) -> str:
        return f"exponential({self._mean:g})"


class BimodalSizes(SizeDistribution):
    """A mixture of two normal modes (many small tasks plus a few large ones).

    Extension workload exercising the re-balancing heuristic: the large-task
    mode creates the heavily loaded processors that re-balancing targets.
    """

    def __init__(
        self,
        small_mean: float,
        large_mean: float,
        large_fraction: float = 0.1,
        relative_std: float = 0.1,
        minimum: float = DEFAULT_MINIMUM_MFLOPS,
    ):
        super().__init__(minimum)
        self.small_mean = require_positive(small_mean, "small_mean")
        self.large_mean = require_positive(large_mean, "large_mean")
        if not (0.0 <= large_fraction <= 1.0):
            raise ConfigurationError(f"large_fraction must lie in [0, 1], got {large_fraction}")
        self.large_fraction = float(large_fraction)
        self.relative_std = require_non_negative(relative_std, "relative_std")

    def _raw_sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        is_large = rng.random(n) < self.large_fraction
        means = np.where(is_large, self.large_mean, self.small_mean)
        return rng.normal(means, means * self.relative_std)

    def mean(self) -> float:
        return (
            self.large_fraction * self.large_mean
            + (1.0 - self.large_fraction) * self.small_mean
        )

    @property
    def name(self) -> str:
        return (
            f"bimodal({self.small_mean:g}, {self.large_mean:g}, "
            f"p_large={self.large_fraction:g})"
        )


def distribution_from_name(name: str, **kwargs) -> SizeDistribution:
    """Construct a distribution from its lowercase family name.

    Recognised names: ``uniform``, ``normal``, ``poisson``, ``constant``,
    ``exponential``, ``bimodal``.  Keyword arguments are forwarded to the
    matching constructor.
    """
    registry = {
        "uniform": UniformSizes,
        "normal": NormalSizes,
        "poisson": PoissonSizes,
        "constant": ConstantSizes,
        "exponential": ExponentialSizes,
        "bimodal": BimodalSizes,
    }
    key = name.strip().lower()
    if key not in registry:
        raise ConfigurationError(
            f"unknown size distribution {name!r}; expected one of {sorted(registry)}"
        )
    return registry[key](**kwargs)
