"""Cross-process telemetry: forward worker-side spans/metrics to the driver.

The parallel executors ship jobs to worker processes; spans recorded there
live in the worker's memory and would be lost at join.  The bridge is a
picklable function wrapper plus a picklable result envelope:

* :func:`wrap_jobs_fn` — called by the executor *in the driver* after the
  picklability probe.  When the driver has an active session it returns
  ``WorkerTelemetry(fn)``; otherwise the function passes through untouched
  and the parallel hot path is exactly what it was before telemetry
  existed.
* :class:`WorkerTelemetry` — runs the job inside a fresh worker-side
  session (always fresh: a session inherited across ``fork`` belongs to the
  driver and must not be written to) and returns ``Telemetered(result,
  snapshot)``.
* :func:`unwrap` — called by the executor as it yields each result, in
  submission order: merges the snapshot into the driver's session — under
  whatever span the driver currently has open, with ``pid-<n>`` worker
  attribution — and hands the bare result onward.

Because the executors yield in job order, merged subtrees land in the
driver's tree in job order too, regardless of which worker computed (or
stole) the job.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, TypeVar

from .spans import TelemetrySession, get_session, telemetry_session

__all__ = ["Telemetered", "WorkerTelemetry", "wrap_jobs_fn", "unwrap"]

J = TypeVar("J")
R = TypeVar("R")


class Telemetered:
    """A job result bundled with the worker-side telemetry snapshot."""

    __slots__ = ("result", "snapshot")

    def __init__(self, result: Any, snapshot: Dict[str, object]) -> None:
        self.result = result
        self.snapshot = snapshot

    def __getstate__(self) -> Dict[str, object]:
        return {"result": self.result, "snapshot": self.snapshot}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.result = state["result"]
        self.snapshot = state["snapshot"]


class WorkerTelemetry:
    """Picklable wrapper running *fn* inside a per-job worker session.

    A fresh session is created for every call — never the module-global one,
    which on a forked worker is a stale copy of the driver's — and the
    previous global is restored afterwards, so the wrapper also behaves on
    the driver's serial-fallback path (the snapshot is simply merged back
    into the session it was split from).  ``capture_resources`` mirrors the
    driver session's setting at wrap time, so worker subtrees carry their
    own CPU/RSS/GC columns — a worker's resource usage is not measurable
    from the driver process.
    """

    __slots__ = ("fn", "capture_resources")

    def __init__(self, fn: Callable[[J], R], capture_resources: bool = False) -> None:
        self.fn = fn
        self.capture_resources = bool(capture_resources)

    def __call__(self, job: J) -> Telemetered:
        session = TelemetrySession(capture_resources=self.capture_resources)
        with telemetry_session(session):
            result = self.fn(job)
        return Telemetered(result, session.snapshot(worker=f"pid-{os.getpid()}"))


def wrap_jobs_fn(fn: Callable[[J], R]) -> Callable[[J], Any]:
    """Wrap *fn* for telemetry forwarding iff the driver has a session."""
    session = get_session()
    if session is None:
        return fn
    return WorkerTelemetry(fn, capture_resources=session.capture_resources)


def unwrap(value: Any) -> Any:
    """Merge a :class:`Telemetered` envelope into the active session.

    Identity for plain values, so executors can apply it unconditionally to
    everything they yield (including partial results recovered from an
    interrupt).
    """
    if isinstance(value, Telemetered):
        session = get_session()
        if session is not None:
            session.merge_snapshot(value.snapshot)
        return value.result
    return value
