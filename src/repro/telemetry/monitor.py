"""Live campaign monitoring: heartbeat status files and ``campaigns watch``.

A long campaign is opaque from the outside: the manifest checkpoints after
every cell, but reading it needs the store layout, and it says nothing
about what the worker processes are doing *right now*.  This module gives
runners a cheap heartbeat channel:

* :class:`RunMonitor` — driver-side writer.  The campaign/scenario runners
  feed it cell events (started/finished/cached) and it maintains a single
  status JSON file — always written atomically (temp file + ``os.replace``)
  so a watcher can never read a torn update, and throttled so a
  thousand-cell campaign does not turn into a thousand fsyncs.
* :class:`WorkerHeartbeat` — a picklable function wrapper the parallel
  executors apply next to the telemetry wrapper.  Each worker process
  maintains its own ``worker-<pid>.json`` beside the status file, so the
  watcher can show per-worker in-flight jobs under the process-pool and
  async executors without any extra IPC.
* :func:`watch` / :func:`render_status` — reader side.  ``repro campaigns
  watch <name>`` polls the status file, renders a refreshing terminal view
  (cells/s, ETA, cache hits, per-worker activity), flags staleness (a
  status file that stopped updating usually means the run was killed), and
  exits when the run finishes or is interrupted.

Everything is files: the watcher needs no connection to the run, works
across processes and machines (shared filesystem), and an interrupted run
leaves its last status behind as a post-mortem summary.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Sequence, TextIO, TypeVar

from ..util.errors import ConfigurationError

__all__ = [
    "STATUS_FORMAT_VERSION",
    "DEFAULT_WRITE_INTERVAL",
    "DEFAULT_STALE_SECONDS",
    "RunMonitor",
    "WorkerHeartbeat",
    "wrap_jobs_fn",
    "heartbeat_context",
    "get_heartbeat_dir",
    "load_status",
    "load_worker_heartbeats",
    "render_status",
    "watch",
]

J = TypeVar("J")
R = TypeVar("R")

STATUS_FORMAT_VERSION = 1

#: Minimum seconds between throttled status writes.  Events that change the
#: run's *shape* (start, finish, interrupt) always write immediately.
DEFAULT_WRITE_INTERVAL = 0.5

#: A running status older than this is rendered as possibly dead: the writer
#: updates on every cell and at least every throttle interval, so silence
#: this long means the process stopped without saying goodbye.
DEFAULT_STALE_SECONDS = 15.0

#: How many recent cell events the status file retains.
RECENT_EVENTS = 8


def _atomic_write(payload: Dict[str, Any], path: str) -> None:
    """Write *payload* as JSON via a sibling temp file + ``os.replace``.

    Local on purpose: importing :mod:`repro.io.results` from telemetry would
    cycle through the experiment stack.
    """
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "w", encoding="utf8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)


# -- driver side -------------------------------------------------------------------------


class RunMonitor:
    """Maintains one atomically-updated status file for a running campaign.

    The writer is deliberately dumb: the runner owns all the counting logic
    it already had for its log lines; the monitor just snapshots those
    numbers to disk.  ``interval`` throttles steady-state writes; pass ``0``
    to write on every event (tests, tiny runs).
    """

    def __init__(
        self,
        path: str,
        *,
        name: str,
        total_units: int,
        cached: int = 0,
        executor: str = "",
        lane_widths: Sequence[int] = (),
        interval: float = DEFAULT_WRITE_INTERVAL,
    ) -> None:
        self.path = os.path.abspath(path)
        self.workers_dir = self.path + ".workers"
        self.name = name
        self.total_units = int(total_units)
        self.cached = int(cached)
        self.computed = 0
        self.executor = executor
        self.lane_widths = [int(w) for w in lane_widths]
        self.interval = float(interval)
        self.state = "running"
        self.interrupt_reason = ""
        self.started_at = time.time()
        self._rate_start = time.perf_counter()
        self._last_write = float("-inf")
        self._events: Deque[Dict[str, Any]] = deque(maxlen=RECENT_EVENTS)
        # Satellite contract: the status (and workers) directories must exist
        # *before* the run starts, so a bad path fails in seconds, not after
        # an hour of computed cells.
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        os.makedirs(self.workers_dir, exist_ok=True)
        for stale in os.listdir(self.workers_dir):
            if stale.startswith("worker-") and stale.endswith(".json"):
                try:
                    os.remove(os.path.join(self.workers_dir, stale))
                except OSError:
                    pass
        self.write(force=True)

    # -- events --------------------------------------------------------------------------
    def heartbeats(self):
        """Context manager activating worker heartbeats for this monitor."""
        return heartbeat_context(self.workers_dir)

    def cell_event(self, cell_id: str, status: str, elapsed_seconds: float = 0.0) -> None:
        """Record one finished cell (``status``: computed/cached/failed)."""
        if status == "computed":
            self.computed += 1
        elif status == "cached":
            self.cached += 1
        self._events.append(
            {
                "cell_id": cell_id,
                "status": status,
                "elapsed_seconds": float(elapsed_seconds),
                "at": time.time(),
            }
        )
        self.write()

    def finish(self, state: str = "finished", reason: str = "") -> None:
        """Terminal update; always written through the throttle."""
        self.state = state
        self.interrupt_reason = reason
        self.write(force=True)

    # -- persistence ---------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        elapsed = time.perf_counter() - self._rate_start
        rate = self.computed / elapsed if elapsed > 0 else 0.0
        remaining = max(0, self.total_units - self.cached - self.computed)
        eta = remaining / rate if rate > 0 else None
        return {
            "kind": "run_status",
            "format_version": STATUS_FORMAT_VERSION,
            "name": self.name,
            "state": self.state,
            "interrupt_reason": self.interrupt_reason,
            "executor": self.executor,
            "pid": os.getpid(),
            "total_units": self.total_units,
            "computed": self.computed,
            "cached": self.cached,
            "pending": remaining,
            "cells_per_second": rate,
            "eta_seconds": eta,
            "lane_widths": self.lane_widths,
            "recent": list(self._events),
            "started_at": self.started_at,
            "updated_at": time.time(),
        }

    def write(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and (now - self._last_write) < self.interval:
            return
        self._last_write = now
        _atomic_write(self.snapshot(), self.path)


# -- worker side -------------------------------------------------------------------------

_HEARTBEAT_DIR: Optional[str] = None
#: Per-process count of jobs this worker completed (module state survives
#: across jobs within one worker process).
_JOBS_DONE = 0


@contextmanager
def heartbeat_context(directory: Optional[str]) -> Iterator[None]:
    """Make *directory* the active heartbeat target for wrapped job functions."""
    global _HEARTBEAT_DIR
    previous = _HEARTBEAT_DIR
    _HEARTBEAT_DIR = directory
    try:
        yield
    finally:
        _HEARTBEAT_DIR = previous


def get_heartbeat_dir() -> Optional[str]:
    """The active heartbeat directory (``None`` = heartbeats off)."""
    return _HEARTBEAT_DIR


def _job_label(job: Any) -> str:
    """A short human-readable label for *job* (best effort, never raises)."""
    try:
        # Lazy: parallel.jobs pulls in the simulation stack, which itself
        # imports telemetry — importing it at module load would cycle.
        from ..parallel.jobs import job_label

        return job_label(job)
    except Exception:
        return type(job).__name__


def _write_heartbeat(directory: str, *, state: str, job: str, started_at: float) -> None:
    payload = {
        "kind": "worker_heartbeat",
        "format_version": STATUS_FORMAT_VERSION,
        "pid": os.getpid(),
        "state": state,
        "job": job,
        "jobs_done": _JOBS_DONE,
        "started_at": started_at,
        "updated_at": time.time(),
    }
    try:
        _atomic_write(payload, os.path.join(directory, f"worker-{os.getpid()}.json"))
    except OSError:
        # A heartbeat must never take the job down with it (read-only FS,
        # deleted directory, quota): the work matters, the telemetry doesn't.
        pass


class WorkerHeartbeat:
    """Picklable wrapper: report job start/finish to ``worker-<pid>.json``.

    Applied by the parallel executors next to the telemetry wrapper (and, on
    their serial-fallback path, runs harmlessly in the driver process — the
    watcher then shows one "worker" with the driver's pid).
    """

    __slots__ = ("fn", "directory")

    def __init__(self, fn: Callable[[J], R], directory: str) -> None:
        self.fn = fn
        self.directory = directory

    def __call__(self, job: J) -> R:
        global _JOBS_DONE
        label = _job_label(job)
        started = time.time()
        _write_heartbeat(self.directory, state="running", job=label, started_at=started)
        result = self.fn(job)
        _JOBS_DONE += 1
        _write_heartbeat(self.directory, state="idle", job=label, started_at=started)
        return result


def wrap_jobs_fn(fn: Callable[[J], R]) -> Callable[[J], R]:
    """Wrap *fn* for worker heartbeats iff a heartbeat directory is active.

    Mirrors :func:`repro.telemetry.remote.wrap_jobs_fn`: with no monitor in
    scope this is the identity, and the parallel hot path is untouched.
    """
    directory = get_heartbeat_dir()
    if directory is None:
        return fn
    return WorkerHeartbeat(fn, directory)


# -- reader side -------------------------------------------------------------------------


def load_status(path: str) -> Dict[str, Any]:
    """Load (and shape-check) a status file written by :class:`RunMonitor`."""
    if not os.path.exists(path):
        raise ConfigurationError(
            f"no run status at {path!r} — the campaign has not started "
            "(or ran under a version without monitoring)"
        )
    with open(path, encoding="utf8") as handle:
        status = json.load(handle)
    if (
        not isinstance(status, dict)
        or status.get("kind") != "run_status"
        or status.get("format_version") != STATUS_FORMAT_VERSION
    ):
        raise ConfigurationError(
            f"{os.path.basename(path)}: not a version-{STATUS_FORMAT_VERSION} "
            "run status file"
        )
    return status


def load_worker_heartbeats(status_path: str) -> List[Dict[str, Any]]:
    """Every worker heartbeat beside *status_path*, sorted by pid."""
    directory = status_path + ".workers"
    if not os.path.isdir(directory):
        return []
    beats = []
    for filename in sorted(os.listdir(directory)):
        if not (filename.startswith("worker-") and filename.endswith(".json")):
            continue
        try:
            with open(os.path.join(directory, filename), encoding="utf8") as handle:
                beat = json.load(handle)
        except (OSError, ValueError):
            continue  # torn/vanished files lose one refresh, not the watch
        if isinstance(beat, dict) and beat.get("kind") == "worker_heartbeat":
            beats.append(beat)
    beats.sort(key=lambda b: b.get("pid", 0))
    return beats


def _fmt_age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.1f}s"
    if seconds < 7200:
        return f"{seconds / 60.0:.1f}min"
    return f"{seconds / 3600.0:.1f}h"


def render_status(
    status: Dict[str, Any],
    workers: Sequence[Dict[str, Any]] = (),
    *,
    now: Optional[float] = None,
    stale_after: float = DEFAULT_STALE_SECONDS,
) -> str:
    """One refresh frame of the watch view, as plain text."""
    now = time.time() if now is None else now
    age = max(0.0, now - float(status.get("updated_at", now)))
    state = status.get("state", "?")
    stale = state == "running" and age > stale_after
    headline = state + (" — STALE, writer may be dead" if stale else "")
    lines = [
        f"campaign {status.get('name', '?')} [{headline}]  via {status.get('executor') or '?'}",
    ]
    total = int(status.get("total_units", 0))
    computed = int(status.get("computed", 0))
    cached = int(status.get("cached", 0))
    pending = int(status.get("pending", 0))
    rate = float(status.get("cells_per_second") or 0.0)
    eta = status.get("eta_seconds")
    progress = (
        f"cells: {computed} computed + {cached} cached = "
        f"{computed + cached}/{total}, {pending} pending"
    )
    if state == "running":
        progress += f"  ({rate:.2f} cells/s"
        progress += f", eta {_fmt_age(float(eta))})" if eta is not None else ")"
    lines.append(progress)
    lanes = status.get("lane_widths") or []
    if lanes:
        lines.append(
            f"lanes: {len(lanes)} unit(s), widths min {min(lanes)} / max {max(lanes)}"
        )
    reason = status.get("interrupt_reason")
    if reason:
        lines.append(f"interrupted: {reason} (resume with `repro campaigns resume`)")
    recent = status.get("recent") or []
    if recent:
        lines.append("recent cells:")
        for event in recent[-5:]:
            elapsed = float(event.get("elapsed_seconds", 0.0))
            suffix = f" in {elapsed:.2f}s" if event.get("status") == "computed" else ""
            lines.append(f"  {event.get('status', '?'):>8}  {event.get('cell_id', '?')}{suffix}")
    if workers:
        lines.append("workers:")
        for beat in workers:
            beat_age = max(0.0, now - float(beat.get("updated_at", now)))
            lines.append(
                f"  pid {beat.get('pid', '?')}  {beat.get('state', '?'):>7}  "
                f"{beat.get('job', '?')}  ({beat.get('jobs_done', 0)} done, "
                f"{_fmt_age(beat_age)} ago)"
            )
    lines.append(f"last update {_fmt_age(age)} ago")
    return "\n".join(lines)


def watch(
    status_path: str,
    *,
    interval: float = 2.0,
    once: bool = False,
    stream: Optional[TextIO] = None,
    stale_after: float = DEFAULT_STALE_SECONDS,
    max_frames: Optional[int] = None,
) -> Dict[str, Any]:
    """Poll *status_path* and render frames to *stream* until the run ends.

    Returns the final status read.  ``once`` renders a single frame (CI and
    scripting); ``max_frames`` bounds the loop for tests.  On a TTY each
    frame repaints the screen; otherwise frames are separated by a blank
    line so the output stays readable when piped.
    """
    import sys

    stream = stream if stream is not None else sys.stdout
    is_tty = bool(getattr(stream, "isatty", lambda: False)())
    frames = 0
    while True:
        status = load_status(status_path)
        frame = render_status(
            status, load_worker_heartbeats(status_path), stale_after=stale_after
        )
        if is_tty and frames > 0:
            stream.write("\x1b[2J\x1b[H")
        elif frames > 0:
            stream.write("\n")
        stream.write(frame + "\n")
        stream.flush()
        frames += 1
        if once or status.get("state") != "running":
            return status
        if max_frames is not None and frames >= max_frames:
            return status
        time.sleep(interval)
