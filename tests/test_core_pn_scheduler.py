"""Tests for the PN scheduler (the paper's contribution)."""

import numpy as np
import pytest

from repro.core import DynamicBatchSizer, FixedBatchSizer, PNScheduler, default_pn_ga_config
from repro.schedulers import SchedulerMode, SchedulingContext
from repro.util.errors import ConfigurationError
from repro.workloads import Task


def make_context(rates, pending=None, comm=None, seed=0):
    rates = np.asarray(rates, dtype=float)
    return SchedulingContext(
        time=0.0,
        rates=rates,
        pending_loads=np.zeros_like(rates) if pending is None else np.asarray(pending, float),
        comm_costs=np.zeros_like(rates) if comm is None else np.asarray(comm, float),
        rng=np.random.default_rng(seed),
    )


def quick_pn(n_processors=3, **kwargs):
    defaults = dict(
        ga_config=default_pn_ga_config(max_generations=10),
        rng=0,
    )
    defaults.update(kwargs)
    return PNScheduler(n_processors=n_processors, **defaults)


class TestConstruction:
    def test_default_ga_config_follows_paper(self):
        config = default_pn_ga_config()
        assert config.population_size == 20
        assert config.max_generations == 1000
        assert config.n_rebalances == 1
        assert config.seeded_initialisation is True

    def test_name_and_mode(self):
        scheduler = quick_pn()
        assert scheduler.name == "PN"
        assert scheduler.mode is SchedulerMode.BATCH

    def test_invalid_processor_count(self):
        with pytest.raises(ConfigurationError):
            PNScheduler(n_processors=0)

    def test_invalid_smoothing_factor(self):
        with pytest.raises(ConfigurationError):
            PNScheduler(n_processors=2, comm_nu=1.5)


class TestScheduling:
    def test_assigns_every_task(self):
        scheduler = quick_pn()
        tasks = [Task(i, float(10 + i * 3)) for i in range(20)]
        assignment = scheduler.schedule(tasks, make_context([10.0, 20.0, 40.0]))
        assert sorted(assignment.task_ids()) == list(range(20))

    def test_empty_batch_returns_empty_assignment(self):
        assignment = quick_pn().schedule([], make_context([10.0, 10.0, 10.0]))
        assert assignment.n_tasks == 0

    def test_history_accumulates(self):
        scheduler = quick_pn()
        ctx = make_context([10.0, 20.0, 40.0])
        scheduler.schedule([Task(0, 10.0), Task(1, 20.0)], ctx)
        scheduler.schedule([Task(2, 10.0), Task(3, 20.0)], ctx)
        assert len(scheduler.history) == 2
        assert scheduler.last_result is scheduler.history[-1]
        assert scheduler.total_generations() >= 2

    def test_mismatched_context_rejected(self):
        scheduler = quick_pn(n_processors=3)
        with pytest.raises(ConfigurationError):
            scheduler.schedule([Task(0, 1.0)], make_context([10.0, 10.0]))

    def test_favours_faster_processors(self):
        scheduler = quick_pn(n_processors=2, ga_config=default_pn_ga_config(max_generations=30))
        tasks = [Task(i, 100.0) for i in range(12)]
        assignment = scheduler.schedule(tasks, make_context([10.0, 90.0]))
        counts = assignment.counts()
        assert counts[1] > counts[0]

    def test_uses_comm_estimates_from_observations(self):
        # Processor 1 is observed to have a huge dispatch cost; with two equal
        # processors the GA should then load processor 0 more heavily.
        config = default_pn_ga_config(max_generations=40)
        scheduler = PNScheduler(n_processors=2, ga_config=config, comm_nu=1.0, rng=1)
        for _ in range(5):
            scheduler.observe_communication(1, 50.0, time=0.0)
            scheduler.observe_communication(0, 0.1, time=0.0)
        tasks = [Task(i, 100.0) for i in range(10)]
        assignment = scheduler.schedule(tasks, make_context([10.0, 10.0]))
        counts = assignment.counts()
        assert counts[0] > counts[1]

    def test_observe_completion_updates_rate_estimates(self):
        scheduler = quick_pn(n_processors=2, rate_nu=1.0)
        # processor 0 is observed to be much slower than its nominal rating
        scheduler.observe_completion(0, Task(0, 100.0), processing_time=100.0, time=0.0)
        rates = scheduler._effective_rates(make_context([50.0, 50.0]))
        assert rates[0] == pytest.approx(1.0)
        assert rates[1] == pytest.approx(50.0)

    def test_reset_clears_learned_state(self):
        scheduler = quick_pn(n_processors=2)
        scheduler.observe_communication(0, 5.0, time=0.0)
        scheduler.schedule([Task(0, 10.0)], make_context([10.0, 10.0]))
        scheduler.reset()
        assert scheduler.history == []
        assert scheduler.comm_estimator.estimate(0) == 0.0


class TestBatchSizing:
    def test_preferred_batch_size_uses_dynamic_rule(self):
        scheduler = PNScheduler(
            n_processors=2,
            batch_sizer=DynamicBatchSizer(nu=1.0, min_batch=1, max_batch=1000, initial_batch=100),
            ga_config=default_pn_ga_config(max_generations=5),
            rng=0,
        )
        ctx = make_context([10.0, 10.0], pending=[990.0, 2000.0])
        # s_p = min(99, 200) = 99 -> floor(sqrt(100)) = 10
        assert scheduler.preferred_batch_size(ctx, n_queued=50) == 10

    def test_zero_queue_gives_zero(self):
        assert quick_pn().preferred_batch_size(make_context([1.0, 1.0, 1.0]), 0) == 0

    def test_fixed_batch_sizer_supported(self):
        scheduler = PNScheduler(
            n_processors=2,
            batch_sizer=FixedBatchSizer(batch_size=7),
            ga_config=default_pn_ga_config(max_generations=5),
            rng=0,
        )
        assert scheduler.preferred_batch_size(make_context([1.0, 1.0]), 100) == 7

    def test_batch_never_exceeds_queue(self):
        scheduler = quick_pn()
        ctx = make_context([10.0, 10.0, 10.0])
        assert scheduler.preferred_batch_size(ctx, 3) <= 3
